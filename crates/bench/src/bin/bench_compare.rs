//! Regression gate for the engine-scaling benchmark, and the recorder's
//! overhead audit.
//!
//! Re-times the `engine_scaling` workloads (oracle evaluator and indexed
//! engine, the two configurations that are meaningful on any core count)
//! with the project's own lightweight median timer and diffs the fresh
//! numbers against the recorded baseline in `BENCH_engine.json`:
//!
//! * an indexed-engine configuration more than `--gate` percent (default
//!   25) slower than its baseline median — after dividing out the same-run
//!   oracle drift, which controls for machine load — fails the run with a
//!   non-zero exit;
//! * the indexed engine is additionally timed with a live metric
//!   [`Aggregator`] attached, so the cost of *enabled* observability is
//!   visible next to the no-op cost (the instrumented engine with the
//!   default no-op recorder IS the plain "indexed" measurement — its
//!   drift-corrected delta against the pre-instrumentation baseline is the
//!   no-op overhead).
//!
//! With `--write <path>` the full comparison is serialized as JSON — this is
//! how `BENCH_obs.json` at the repository root is produced:
//!
//! ```text
//! cargo run --release -p recurs-bench --bin bench_compare -- \
//!     --samples 10 --write BENCH_obs.json
//! ```
//!
//! The incremental-maintenance lane re-times single-fact insert/delete
//! patches against a cold refixpoint on tc/800 and diffs against
//! `BENCH_ivm.json` (`--ivm-baseline`): the patched rows are gated with the
//! same drift-corrected tripwire (the same-run cold refixpoint is the
//! control), and the run additionally fails if the measured patched-vs-cold
//! median speedup drops below `--ivm-speedup` (default 5).
//!
//! The network-load lane boots an in-process `recurs-net` TCP server on
//! tc/200 and replays a mixed read/write workload through the crate's load
//! generator (five rounds, keeping the minimum-mean round), diffing the
//! client-observed mean latency against `BENCH_load.json`
//! (`--load-baseline`) with the same drift-corrected tripwire (the control
//! is a refixpoint median sampled just before the kept round; percentiles
//! are recorded but not gated); the lane also hard-fails on shedding at
//! smoke QPS, transport errors, or a forced drain. `--write-load <path>`
//! regenerates `BENCH_load.json`.
//!
//! `--quick` trims to the smallest size per workload with fewer samples,
//! which is what the CI lane runs as a smoke-level regression tripwire.
//!
//! `--reaudit-obs <path>` appends this run's no-op-overhead verdict to the
//! `"reaudits"` array of an existing `BENCH_obs.json` (keeping the last
//! five), so the recorded overhead claim is re-checked — without rewriting
//! the pinned baseline rows — every time the CI bench lane runs.

use recurs_datalog::eval::semi_naive;
use recurs_datalog::govern::EvalBudget;
use recurs_datalog::parser::parse_program;
use recurs_datalog::relation::tuple_u64;
use recurs_datalog::relation::Relation;
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::symbol::Symbol;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::Database;
use recurs_engine::{run_linear, EngineConfig, EngineMode};
use recurs_ivm::{EdbDelta, FactOp, Materialization};
use recurs_obs::aggregate::Aggregator;
use recurs_obs::Obs;
use recurs_workload::graphs::chain;
use std::hint::black_box;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// One (workload, size, configuration) comparison row.
struct Row {
    workload: &'static str,
    size: u64,
    config: &'static str,
    baseline_ms: f64,
    measured_ms: f64,
    /// Median with a live `Aggregator` recorder (indexed rows only).
    enabled_ms: Option<f64>,
    /// Same-run oracle medians (indexed rows only), used to cancel machine
    /// drift out of the baseline comparison.
    control: Option<(f64, f64)>,
}

impl Row {
    /// Raw measured-vs-baseline drift. On a shared machine this mixes code
    /// changes with load changes, so it is reported but not gated on.
    fn delta_pct(&self) -> f64 {
        (self.measured_ms / self.baseline_ms - 1.0) * 100.0
    }

    /// Machine-drift-corrected delta: the oracle evaluator shares the run
    /// (interleaved sample-by-sample) but not the code under test, so
    /// dividing this row's measured/baseline ratio by the oracle's cancels
    /// how fast the machine happens to be today. The control ratio is
    /// clamped at >= 1: a control that ran *faster* than at baseline time
    /// would tighten the gate and fail rows whose raw delta is well inside
    /// the tripwire (the control's own sample noise masquerading as a
    /// regression), so machine slowdown is credited but machine speedup
    /// falls back to the raw comparison. Falls back to the raw delta for
    /// rows without a control (the oracle itself).
    fn corrected_pct(&self) -> f64 {
        match self.control {
            Some((oracle_baseline, oracle_measured)) => {
                let own = self.measured_ms / self.baseline_ms;
                let control = (oracle_measured / oracle_baseline).max(1.0);
                (own / control - 1.0) * 100.0
            }
            None => self.delta_pct(),
        }
    }
}

fn tc_formula() -> LinearRecursion {
    validate_with_generic_exit(
        &parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").unwrap(),
    )
    .unwrap()
}

fn sg_formula() -> LinearRecursion {
    validate_with_generic_exit(
        &parse_program("SG(x, y) :- Up(x, u), SG(u, v), Down(v, y).\nSG(x, y) :- Flat(x, y).")
            .unwrap(),
    )
    .unwrap()
}

fn tc_db(n: u64) -> Database {
    let mut db = Database::new();
    db.insert_relation("A", chain(n));
    db.insert_relation("E", chain(n));
    db
}

/// Same-generation EDB over a complete binary tree of `n` nodes (the same
/// construction as `benches/engine_scaling.rs`).
fn sg_db(n: u64) -> Database {
    let down: Vec<(u64, u64)> = (2..=n).map(|child| ((child - 2) / 2 + 1, child)).collect();
    let mut db = Database::new();
    db.insert_relation(
        "Up",
        Relation::from_pairs(down.iter().map(|&(p, c)| (c, p))),
    );
    db.insert_relation("Down", Relation::from_pairs(down));
    db.insert_relation("Flat", Relation::from_pairs([(1u64, 1u64)]));
    db
}

/// Median of a sample vector (sorts in place).
fn median(times: &mut [f64]) -> f64 {
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn time_once(work: impl FnOnce()) -> f64 {
    let start = Instant::now();
    work();
    start.elapsed().as_secs_f64() * 1e3
}

/// Times the oracle evaluator, the indexed engine (default no-op recorder),
/// and the indexed engine with a live [`Aggregator`] — *interleaved*
/// sample-by-sample, so all three medians see the same machine conditions
/// and their ratios are meaningful even when absolute speed drifts between
/// runs. Returns `(oracle_ms, indexed_ms, indexed_aggregator_ms)` medians.
fn interleaved_medians(db: &Database, f: &LinearRecursion, samples: usize) -> (f64, f64, f64) {
    let program = f.to_program();
    let config = |obs: Obs| EngineConfig {
        mode: EngineMode::Indexed,
        budget: EvalBudget::unlimited(),
        obs,
    };
    let noop = config(Obs::noop());
    let enabled = config(Obs::new(Arc::new(Aggregator::default())));
    let (mut oracle, mut indexed, mut aggregated) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..samples {
        oracle.push(time_once(|| {
            let mut db = db.clone();
            semi_naive(&mut db, &program, None).unwrap();
            black_box(&db);
        }));
        for (cfg, times) in [(&noop, &mut indexed), (&enabled, &mut aggregated)] {
            times.push(time_once(|| {
                let mut db = db.clone();
                let sat = run_linear(&mut db, f, cfg).unwrap();
                assert!(sat.outcome.is_complete());
                black_box(&db);
            }));
        }
    }
    (
        median(&mut oracle),
        median(&mut indexed),
        median(&mut aggregated),
    )
}

/// Pulls `"<size>": { ..., "<config>": <ms>, ... }` out of the baseline
/// file's `"<workload>"` section. The baseline is data this repository
/// publishes, so a missing entry is a hard error, not a skip.
fn baseline_ms(text: &str, workload: &str, size: u64, config: &str) -> Result<f64, String> {
    let section = text
        .split_once(&format!("\"{workload}\""))
        .ok_or_else(|| format!("baseline has no workload {workload:?}"))?
        .1;
    let line = section
        .lines()
        .find(|l| l.trim_start().starts_with(&format!("\"{size}\":")))
        .ok_or_else(|| format!("baseline {workload} has no size {size}"))?;
    let after = line
        .split_once(&format!("\"{config}\":"))
        .ok_or_else(|| format!("baseline {workload}/{size} has no config {config:?}"))?
        .1;
    let number: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    number
        .parse()
        .map_err(|e| format!("bad number for {workload}/{size}/{config}: {e}"))
}

struct Options {
    samples: usize,
    gate_pct: f64,
    baseline: String,
    ivm_baseline: String,
    ivm_speedup: f64,
    load_baseline: String,
    write: Option<String>,
    write_load: Option<String>,
    reaudit_obs: Option<String>,
    quick: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        samples: 10,
        gate_pct: 25.0,
        baseline: "BENCH_engine.json".to_string(),
        ivm_baseline: "BENCH_ivm.json".to_string(),
        ivm_speedup: 5.0,
        load_baseline: "BENCH_load.json".to_string(),
        write: None,
        write_load: None,
        reaudit_obs: None,
        quick: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--samples" => {
                opts.samples = value("--samples")?.parse().map_err(|e| format!("{e}"))?
            }
            "--gate" => opts.gate_pct = value("--gate")?.parse().map_err(|e| format!("{e}"))?,
            "--baseline" => opts.baseline = value("--baseline")?,
            "--ivm-baseline" => opts.ivm_baseline = value("--ivm-baseline")?,
            "--ivm-speedup" => {
                opts.ivm_speedup = value("--ivm-speedup")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--load-baseline" => opts.load_baseline = value("--load-baseline")?,
            "--write" => opts.write = Some(value("--write")?),
            "--write-load" => opts.write_load = Some(value("--write-load")?),
            "--reaudit-obs" => opts.reaudit_obs = Some(value("--reaudit-obs")?),
            "--quick" => opts.quick = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if opts.samples == 0 {
        return Err("--samples must be positive".to_string());
    }
    Ok(opts)
}

/// One benchmark family: name, formula, EDB builder, sizes to time.
type Workload = (
    &'static str,
    LinearRecursion,
    fn(u64) -> Database,
    &'static [u64],
);

fn measure(opts: &Options, baseline: &str) -> Result<Vec<Row>, String> {
    let tc_sizes: &'static [u64] = if opts.quick { &[200] } else { &[200, 400, 800] };
    let sg_sizes: &'static [u64] = if opts.quick {
        &[255]
    } else {
        &[255, 511, 1023]
    };
    let workloads: [Workload; 2] = [
        ("engine_scaling_tc", tc_formula(), tc_db, tc_sizes),
        ("engine_scaling_sg", sg_formula(), sg_db, sg_sizes),
    ];
    let mut rows = Vec::new();
    for (workload, f, make_db, sizes) in workloads {
        for &size in sizes {
            let db = make_db(size);
            let (oracle_ms, indexed_ms, aggregated_ms) = interleaved_medians(&db, &f, opts.samples);
            let oracle_baseline = baseline_ms(baseline, workload, size, "oracle")?;
            let oracle = Row {
                workload,
                size,
                config: "oracle",
                baseline_ms: oracle_baseline,
                measured_ms: oracle_ms,
                enabled_ms: None,
                control: None,
            };
            let indexed = Row {
                workload,
                size,
                config: "indexed",
                baseline_ms: baseline_ms(baseline, workload, size, "indexed")?,
                measured_ms: indexed_ms,
                enabled_ms: Some(aggregated_ms),
                control: Some((oracle_baseline, oracle_ms)),
            };
            eprintln!(
                "{workload}/{size}: oracle {:.2} ms ({:+.1}% raw) | indexed {:.2} ms \
                 ({:+.1}% raw, {:+.1}% drift-corrected) | aggregator on {:.2} ms",
                oracle.measured_ms,
                oracle.delta_pct(),
                indexed.measured_ms,
                indexed.delta_pct(),
                indexed.corrected_pct(),
                aggregated_ms
            );
            rows.push(oracle);
            rows.push(indexed);
        }
    }
    Ok(rows)
}

/// Serializes the comparison in the same spirit as the other `BENCH_*.json`
/// reports: medians per workload/size plus the overhead verdict.
fn report_json(
    opts: &Options,
    rows: &[Row],
    noop_median_pct: f64,
    noop_max_pct: f64,
    gate_ok: bool,
) -> String {
    use serde::Value;
    let mut workloads: Vec<(String, Value)> = Vec::new();
    for row in rows {
        let entry = Value::object(
            [
                ("baseline_ms", Value::Float(row.baseline_ms)),
                ("measured_ms", Value::Float(row.measured_ms)),
                ("delta_pct", Value::Float(row.delta_pct())),
            ]
            .into_iter()
            .chain(row.control.map(|_| {
                (
                    "drift_corrected_delta_pct",
                    Value::Float(row.corrected_pct()),
                )
            }))
            .chain(
                row.enabled_ms
                    .map(|ms| ("aggregator_on_ms", Value::Float(ms))),
            ),
        );
        workloads.push((
            format!("{}/{}/{}", row.workload, row.size, row.config),
            entry,
        ));
    }
    let value = Value::object([
        (
            "bench",
            Value::string("crates/bench/src/bin/bench_compare.rs"),
        ),
        (
            "command",
            Value::string(format!(
                "cargo run --release -p recurs-bench --bin bench_compare -- --samples {}{}",
                opts.samples,
                opts.write
                    .as_deref()
                    .map(|w| format!(" --write {w}"))
                    .unwrap_or_default()
            )),
        ),
        ("baseline", Value::string(opts.baseline.clone())),
        (
            "units",
            Value::string(format!(
                "milliseconds, median of {} interleaved samples; delta_pct is raw \
                 measured vs baseline, drift_corrected_delta_pct divides out the \
                 same-run oracle drift (the oracle evaluator is untouched by the \
                 recorder instrumentation, so it controls for machine speed)",
                opts.samples
            )),
        ),
        ("gate_pct", Value::Float(opts.gate_pct)),
        ("gate_ok", Value::Bool(gate_ok)),
        ("rows", Value::object(workloads)),
        (
            "noop_overhead",
            Value::object([
                (
                    "note",
                    Value::string(
                        "indexed rows time the obs-instrumented engine with the default \
                         no-op recorder against the pre-instrumentation baseline; the \
                         drift-corrected deltas bound the no-op recorder cost (negative \
                         = faster than baseline). The verdict uses the median across \
                         workload/size configurations: each configuration's correction \
                         relies on its recorded oracle/indexed ratio, and a single \
                         stale ratio (recorded under different machine load) would \
                         otherwise dominate the max. aggregator_on_ms shows the same \
                         run with a live metric aggregator attached.",
                    ),
                ),
                (
                    "median_indexed_drift_corrected_delta_pct",
                    Value::Float(noop_median_pct),
                ),
                (
                    "max_indexed_drift_corrected_delta_pct",
                    Value::Float(noop_max_pct),
                ),
                ("limit_pct", Value::Float(5.0)),
                ("within_limit", Value::Bool(noop_median_pct <= 5.0)),
            ]),
        ),
    ]);
    serde::json::to_string_pretty(&value)
}

/// Times single-fact maintenance on tc/800: insert the tip edge
/// `E(800, 801)` and patch the standing materialization, delete it again
/// and patch, and refixpoint the inserted database from scratch —
/// interleaved sample-by-sample so the cold refixpoint doubles as the
/// same-run machine-drift control for the patched rows. Both patch
/// directions are certified tuple-identical to from-scratch saturation
/// before timing. Returns the rows plus the measured patched-vs-cold
/// median speedup (cold over the slower patch direction).
fn measure_ivm(opts: &Options, baseline: &str) -> Result<(Vec<Row>, f64), String> {
    const WORKLOAD: &str = "update_latency_tc";
    const SIZE: u64 = 800;
    let f = tc_formula();
    let budget = EvalBudget::unlimited();
    let db = tc_db(SIZE);
    let e = Symbol::intern("E");
    let tip = tuple_u64([SIZE, SIZE + 1]);
    let insert =
        EdbDelta::normalize(&[FactOp::Insert(e, tip.clone())], &db).map_err(|e| format!("{e}"))?;
    let mut inserted_db = db.clone();
    insert
        .apply_to(&mut inserted_db)
        .map_err(|e| format!("{e}"))?;
    let delete =
        EdbDelta::normalize(&[FactOp::Delete(e, tip)], &inserted_db).map_err(|e| format!("{e}"))?;

    let refixpoint = |edb: &Database| {
        let mut db = edb.clone();
        db.insert_relation(f.predicate, Relation::new(f.dimension()));
        semi_naive(&mut db, &f.to_program(), None).unwrap();
        db.get(f.predicate).unwrap().clone()
    };
    let mut mat =
        Materialization::saturate(&f, &db, &budget, &Obs::noop()).map_err(|e| format!("{e}"))?;
    // Certify both directions once before timing anything.
    mat.apply(&insert, &budget).map_err(|e| format!("{e}"))?;
    assert_eq!(mat.relation(), &refixpoint(&inserted_db));
    mat.apply(&delete, &budget).map_err(|e| format!("{e}"))?;
    assert_eq!(mat.relation(), &refixpoint(&db));

    let (mut ins_times, mut del_times, mut cold_times) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..opts.samples {
        ins_times.push(time_once(|| {
            black_box(mat.apply(&insert, &budget).unwrap());
        }));
        del_times.push(time_once(|| {
            black_box(mat.apply(&delete, &budget).unwrap());
        }));
        cold_times.push(time_once(|| {
            black_box(refixpoint(&inserted_db));
        }));
    }
    let (ins_ms, del_ms, cold_ms) = (
        median(&mut ins_times),
        median(&mut del_times),
        median(&mut cold_times),
    );
    let cold_baseline = baseline_ms(baseline, WORKLOAD, SIZE, "cold")?;
    let rows = vec![
        Row {
            workload: WORKLOAD,
            size: SIZE,
            config: "cold",
            baseline_ms: cold_baseline,
            measured_ms: cold_ms,
            enabled_ms: None,
            control: None,
        },
        Row {
            workload: WORKLOAD,
            size: SIZE,
            config: "patched_insert",
            baseline_ms: baseline_ms(baseline, WORKLOAD, SIZE, "patched_insert")?,
            measured_ms: ins_ms,
            enabled_ms: None,
            control: Some((cold_baseline, cold_ms)),
        },
        Row {
            workload: WORKLOAD,
            size: SIZE,
            config: "patched_delete",
            baseline_ms: baseline_ms(baseline, WORKLOAD, SIZE, "patched_delete")?,
            measured_ms: del_ms,
            enabled_ms: None,
            control: Some((cold_baseline, cold_ms)),
        },
    ];
    let speedup = cold_ms / ins_ms.max(del_ms);
    eprintln!(
        "{WORKLOAD}/{SIZE}: patched insert {ins_ms:.3} ms | patched delete {del_ms:.3} ms \
         | cold {cold_ms:.2} ms | speedup {speedup:.0}x"
    );
    Ok((rows, speedup))
}

/// Times the TCP front end under a mixed read/write workload on tc/400: an
/// in-process [`recurs_net::NetServer`] is booted on an ephemeral port and
/// the crate's own load generator replays bound `P(k, y)` queries plus
/// paired insert/delete updates against it at a modest QPS (state-neutral,
/// so rounds are comparable). The lane runs five rounds and keeps the one
/// with the minimum mean latency (latency noise is one-sided, so the min is
/// the robust estimator); a semi-naive refixpoint median sampled immediately
/// before that round is the machine-drift control. Returns the comparison
/// rows (only the mean row is gated — the percentiles swing across the
/// warm-hit/cold-query cliff between healthy runs and are reported, not
/// gated), the fresh `BENCH_load.json` text, and whether the liveness
/// invariants held in every round (no shedding at smoke QPS, no transport
/// errors, a clean unforced drain).
fn measure_load(
    opts: &Options,
    baseline: Option<&str>,
) -> Result<(Vec<Row>, String, bool), String> {
    const WORKLOAD: &str = "net_load_tc";
    const SIZE: u64 = 200;
    let f = tc_formula();
    let db = tc_db(SIZE);
    let program = f.to_program();
    let oracle_db = db.clone();

    let service = Arc::new(recurs_serve::QueryService::new(
        f,
        db,
        recurs_serve::ServeConfig::default(),
    ));
    let server =
        recurs_net::NetServer::bind(service, "127.0.0.1:0", recurs_net::NetConfig::default())
            .map_err(|e| format!("bind load server: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?
        .to_string();
    let (handle, join) = server.spawn();
    // Sized well under the server's capacity: this lane is a latency
    // tripwire, not a saturation test (a target above capacity would measure
    // queue depth, which explodes with machine noise). Updates invalidate
    // the saturation cache, so the p95 tracks the cold bound-query path.
    // The spec is deliberately identical in quick and full mode: percentiles
    // are only comparable to the baseline when the request mix, pacing, and
    // sample count match, and the lane only costs a few seconds anyway.
    let spec = recurs_net::LoadSpec {
        addr,
        connections: 4,
        qps: 60.0,
        duration: std::time::Duration::from_millis(3_000),
        update_ratio: 0.05,
        key_space: 32,
        seed: 42,
        ..recurs_net::LoadSpec::default()
    };
    // Five rounds, with the machine-drift control re-sampled immediately
    // before each one, keeping the round with the *minimum* mean. Latency
    // noise on a shared machine is one-sided (background load only ever
    // adds), which makes the min the robust estimator of what the server
    // can actually do: a genuine code regression lifts every round, the min
    // included. The kept round's own control handles any residual drift.
    const ROUNDS: usize = 5;
    let mut round_oracle = Vec::new();
    let mut round_reports = Vec::new();
    for _ in 0..ROUNDS {
        let mut oracle_times = Vec::new();
        for _ in 0..opts.samples {
            oracle_times.push(time_once(|| {
                let mut db = oracle_db.clone();
                semi_naive(&mut db, &program, None).unwrap();
                black_box(&db);
            }));
        }
        round_oracle.push(median(&mut oracle_times));
        round_reports.push(recurs_net::loadgen::run(&spec).map_err(|e| format!("loadgen: {e}"))?);
    }
    handle.drain();
    let drain = join
        .join()
        .map_err(|_| "load server thread panicked".to_string())?
        .map_err(|e| format!("load server: {e}"))?;
    let best = (0..ROUNDS)
        .min_by(|&a, &b| {
            round_reports[a]
                .mean_ms
                .total_cmp(&round_reports[b].mean_ms)
        })
        .unwrap_or(0);
    let oracle_ms = round_oracle[best];
    let report = &round_reports[best];

    let base = |config: &str, measured: f64| -> Result<f64, String> {
        match baseline {
            Some(text) => baseline_ms(text, WORKLOAD, SIZE, config),
            // First run (--write-load with no baseline yet): gate against
            // the fresh measurements themselves.
            None => Ok(measured),
        }
    };
    let rows = vec![
        Row {
            workload: WORKLOAD,
            size: SIZE,
            config: "oracle",
            baseline_ms: base("oracle", oracle_ms)?,
            measured_ms: oracle_ms,
            enabled_ms: None,
            control: None,
        },
        Row {
            workload: WORKLOAD,
            size: SIZE,
            config: "p50",
            baseline_ms: base("p50", report.p50_ms)?,
            measured_ms: report.p50_ms,
            enabled_ms: None,
            control: None,
        },
        Row {
            workload: WORKLOAD,
            size: SIZE,
            config: "p95",
            baseline_ms: base("p95", report.p95_ms)?,
            measured_ms: report.p95_ms,
            enabled_ms: None,
            control: None,
        },
        Row {
            workload: WORKLOAD,
            size: SIZE,
            config: "p99",
            baseline_ms: base("p99", report.p99_ms)?,
            measured_ms: report.p99_ms,
            enabled_ms: None,
            control: None,
        },
        // The gated row. The mean averages the round's real evaluation work
        // (updates, post-update cold queries, cache hits) instead of one
        // order statistic perched on the warm-hit/cold-query cliff — the
        // percentiles above swing several-fold between healthy runs, while
        // the mean tracks machine speed, which is what the refixpoint
        // control cancels.
        Row {
            workload: WORKLOAD,
            size: SIZE,
            config: "mean",
            baseline_ms: base("mean", report.mean_ms)?,
            measured_ms: report.mean_ms,
            enabled_ms: None,
            control: Some((base("oracle", oracle_ms)?, oracle_ms)),
        },
    ];
    eprintln!(
        "{WORKLOAD}/{SIZE}: {:.0}/{:.0} qps | mean {:.3} ms | p50 {:.3} ms | p95 {:.3} ms \
         | p99 {:.3} ms | shed rate {:.4} | oracle control {oracle_ms:.2} ms",
        report.achieved_qps,
        report.target_qps,
        report.mean_ms,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
        report.shed_rate
    );
    let mut load_ok = true;
    for (round, r) in round_reports.iter().enumerate() {
        if r.shed_rate > 0.05 {
            eprintln!(
                "REGRESSION {WORKLOAD}/{SIZE}: shed rate {:.4} at smoke QPS in round {round} \
                 (expected ~0)",
                r.shed_rate
            );
            load_ok = false;
        }
        if r.samples.transport_errors > 0 || r.samples.errors > 0 {
            eprintln!(
                "REGRESSION {WORKLOAD}/{SIZE}: {} transport errors, {} error replies in \
                 round {round}",
                r.samples.transport_errors, r.samples.errors
            );
            load_ok = false;
        }
    }
    if drain.forced {
        eprintln!("REGRESSION {WORKLOAD}/{SIZE}: the post-run drain was forced");
        load_ok = false;
    }

    let json = format!(
        "{{\n  \"bench\": \"crates/bench/src/bin/bench_compare.rs (net load lane)\",\n  \
         \"command\": \"cargo run --release -p recurs-bench --bin bench_compare -- \
         --samples {} --write-load BENCH_load.json\",\n  \
         \"units\": \"milliseconds; mean/p50/p95/p99 are client-observed round-trip \
         latencies from the recurs-net load generator replaying a 5% update mixed \
         workload at {:.0} qps over 4 connections against an in-process TCP server on \
         tc/{SIZE}, minimum-mean round of 5 (latency noise is one-sided); oracle is \
         the median of {} semi-naive refixpoints sampled just before that round and \
         controls for machine drift (only the mean row is gated, with the 25% \
         drift-corrected tripwire — the percentiles swing across the warm-hit/cold-query \
         cliff between healthy runs and are reported, not gated)\",\n  \
         \"{WORKLOAD}\": {{\n    \"{SIZE}\": {{ \"oracle\": {:.3}, \"mean\": {:.3}, \
         \"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3} }}\n  }},\n  \"report\": {}\n}}",
        opts.samples,
        spec.qps,
        opts.samples,
        oracle_ms,
        report.mean_ms,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
        report.to_json(),
    );
    Ok((rows, json, load_ok))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&args)?;
    let baseline = std::fs::read_to_string(&opts.baseline)
        .map_err(|e| format!("cannot read baseline {}: {e}", opts.baseline))?;
    let ivm_baseline = std::fs::read_to_string(&opts.ivm_baseline)
        .map_err(|e| format!("cannot read baseline {}: {e}", opts.ivm_baseline))?;
    let load_baseline = match std::fs::read_to_string(&opts.load_baseline) {
        Ok(text) => Some(text),
        Err(e) if opts.write_load.is_some() => {
            eprintln!(
                "note: no load baseline {} ({e}); gating against fresh measurements",
                opts.load_baseline
            );
            None
        }
        Err(e) => return Err(format!("cannot read baseline {}: {e}", opts.load_baseline)),
    };
    let mut rows = measure(&opts, &baseline)?;
    let (ivm_rows, ivm_speedup) = measure_ivm(&opts, &ivm_baseline)?;
    rows.extend(ivm_rows);
    let (load_rows, load_json, load_ok) = measure_load(&opts, load_baseline.as_deref())?;
    rows.extend(load_rows);

    // The gate judges the code under test (the instrumented indexed
    // engine) on its drift-corrected delta; the oracle rows are the
    // control and are reported but never gated — their raw drift is
    // machine load, which would make the gate flaky for no signal.
    let regressions: Vec<&Row> = rows
        .iter()
        .filter(|r| r.control.is_some() && r.corrected_pct() > opts.gate_pct)
        .collect();
    let mut corrected: Vec<f64> = rows
        .iter()
        .filter(|r| r.config == "indexed")
        .map(Row::corrected_pct)
        .collect();
    let noop_max_pct = corrected.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let noop_median_pct = median(&mut corrected);
    let speedup_ok = ivm_speedup >= opts.ivm_speedup;
    let gate_ok = regressions.is_empty() && speedup_ok && load_ok;

    if let Some(path) = &opts.write_load {
        std::fs::write(path, load_json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = &opts.write {
        std::fs::write(
            path,
            report_json(&opts, &rows, noop_median_pct, noop_max_pct, gate_ok) + "\n",
        )
        .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = &opts.reaudit_obs {
        append_reaudit(path, &opts, noop_median_pct, noop_max_pct)?;
        eprintln!("appended no-op overhead re-audit to {path}");
    }
    eprintln!(
        "no-op overhead (drift-corrected indexed delta vs baseline): \
         median {noop_median_pct:+.1}%, max {noop_max_pct:+.1}%"
    );
    for r in &regressions {
        eprintln!(
            "REGRESSION {}/{}/{}: {:.2} ms vs baseline {:.2} ms \
             ({:+.1}% drift-corrected > {:.0}%)",
            r.workload,
            r.size,
            r.config,
            r.measured_ms,
            r.baseline_ms,
            r.corrected_pct(),
            opts.gate_pct
        );
    }
    if !speedup_ok {
        eprintln!(
            "REGRESSION update_latency_tc/800: patched-vs-cold speedup {ivm_speedup:.1}x \
             below the {:.0}x acceptance floor",
            opts.ivm_speedup
        );
    }
    Ok(gate_ok)
}

/// How many `--reaudit-obs` records `BENCH_obs.json` retains.
const MAX_REAUDITS: usize = 5;

/// Appends this run's no-op-overhead verdict to the `"reaudits"` array of
/// an existing `BENCH_obs.json`, keeping the last [`MAX_REAUDITS`] records.
/// The pinned baseline rows and the original `noop_overhead` verdict are
/// left untouched; the array is an append-only audit trail showing the
/// overhead claim still holds on the current tree.
fn append_reaudit(path: &str, opts: &Options, median_pct: f64, max_pct: f64) -> Result<(), String> {
    use serde::Value;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut doc =
        recurs_obs::jsonl::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let Value::Object(fields) = &mut doc else {
        return Err(format!("{path} is not a JSON object"));
    };
    let record = Value::object([
        ("samples", Value::UInt(opts.samples as u64)),
        ("quick", Value::Bool(opts.quick)),
        (
            "median_indexed_drift_corrected_delta_pct",
            Value::Float(median_pct),
        ),
        (
            "max_indexed_drift_corrected_delta_pct",
            Value::Float(max_pct),
        ),
        ("limit_pct", Value::Float(5.0)),
        ("within_limit", Value::Bool(median_pct <= 5.0)),
    ]);
    match fields.iter_mut().find(|(k, _)| k == "reaudits") {
        Some((_, Value::Array(items))) => {
            items.push(record);
            if items.len() > MAX_REAUDITS {
                let excess = items.len() - MAX_REAUDITS;
                items.drain(..excess);
            }
        }
        Some((_, other)) => return Err(format!("{path}: \"reaudits\" is not an array: {other:?}")),
        None => fields.push(("reaudits".to_string(), Value::Array(vec![record]))),
    }
    std::fs::write(path, serde::json::to_string_pretty(&doc) + "\n")
        .map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            ExitCode::FAILURE
        }
    }
}
