//! Regenerates every figure of the paper (Figures 1–6) mechanically: the
//! I-graphs and resolution graphs in ASCII and Graphviz DOT.
//!
//! Run with: `cargo run -p recurs-bench --bin report_figures`

use recurs_datalog::parser::parse_rule;
use recurs_igraph::build::{igraph_of, resolution_graph};
use recurs_igraph::dot::{to_ascii, to_dot};

fn main() {
    let figures: &[(&str, &str, &str, usize)] = &[
        // (figure id, formula name, source, resolution levels to show)
        ("Figure 1(a)", "s1a", "P(x, y) :- A(x, z), P(z, y).", 1),
        (
            "Figure 1(b)",
            "s1b",
            "P(x, y, z) :- A(x, y), P(u, z, v), B(u, v).",
            1,
        ),
        (
            "Figure 2(a)-(c)",
            "s2a",
            "P(x, y) :- A(x, z), P(z, u), B(u, y).",
            2,
        ),
        (
            "Figure 3",
            "s8",
            "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), P(z, y1, z1, u1).",
            1,
        ),
        (
            "Figure 4",
            "s9",
            "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).",
            2,
        ),
        (
            "Figure 5",
            "s11",
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).",
            2,
        ),
        (
            "Figure 6",
            "s12",
            "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), P(u, v, w).",
            2,
        ),
    ];

    for (fig, name, src, levels) in figures {
        println!("{}", "=".repeat(72));
        println!("{fig} — {name}: {src}");
        println!("{}", "=".repeat(72));
        let rule = parse_rule(src).unwrap();
        for k in 1..=*levels {
            let rg = resolution_graph(&rule, k);
            println!("--- resolution graph G{k} ---");
            print!("{}", to_ascii(&rg.graph));
            if k > 1 {
                println!("expansion {k}: {}", rg.expansion);
            }
        }
        println!("--- DOT (G1) ---");
        print!("{}", to_dot(&igraph_of(&rule), name));
        println!();
    }
}
