//! Pins the generated event-taxonomy table in DESIGN §4e to the registry:
//! the region between the `taxonomy:begin`/`taxonomy:end` markers must be
//! byte-for-byte what `taxonomy::markdown_table()` renders today. On a
//! mismatch, regenerate with `obsctl taxonomy` and paste the output
//! between the markers.

use recurs_obs::taxonomy;

#[test]
fn design_doc_table_matches_the_registry() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    let doc = std::fs::read_to_string(path).expect("DESIGN.md readable");
    let begin = "<!-- taxonomy:begin -->\n";
    let end = "<!-- taxonomy:end -->";
    let start = doc
        .find(begin)
        .expect("DESIGN.md must contain the taxonomy:begin marker")
        + begin.len();
    let stop = doc[start..]
        .find(end)
        .map(|i| start + i)
        .expect("DESIGN.md must contain the taxonomy:end marker");
    let embedded = &doc[start..stop];
    assert_eq!(
        embedded,
        taxonomy::markdown_table(),
        "DESIGN.md taxonomy table is stale; regenerate with `obsctl taxonomy`"
    );
}
