//! JSON-lines trace sink (behind the `trace-json` feature).
//!
//! A [`TraceWriter`] persists every [`event`](crate::Recorder::event) as
//! one JSON object per line:
//!
//! ```json
//! {"seq":3,"ts_us":1284,"kind":"engine.iteration","iteration":2,"delta_in":9,...}
//! ```
//!
//! * `seq` — monotone per-writer sequence number, so interleavings from
//!   concurrent emitters stay reconstructable.
//! * `ts_us` — microseconds since the writer was created.
//! * `kind` — the event kind; remaining keys are the event's own fields in
//!   emission order.
//!
//! Counters and histograms are *not* written — they go to the
//! [`Aggregator`](crate::aggregate::Aggregator); a trace file is pure
//! event provenance. Write errors are sticky: the first failure disables
//! the writer (observable via [`TraceWriter::had_error`]) rather than
//! panicking inside instrumented code.

use crate::{Recorder, Value};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

struct Inner {
    out: Box<dyn Write + Send>,
    seq: u64,
    error: bool,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("seq", &self.seq)
            .field("error", &self.error)
            .finish()
    }
}

/// A JSON-lines event sink. See the [module docs](self).
#[derive(Debug)]
pub struct TraceWriter {
    start: Instant,
    inner: Mutex<Inner>,
}

impl TraceWriter {
    /// Wraps any writer (tests pass a `Vec<u8>` via `Cursor`).
    pub fn new(out: Box<dyn Write + Send>) -> TraceWriter {
        TraceWriter {
            start: Instant::now(),
            inner: Mutex::new(Inner {
                out,
                seq: 0,
                error: false,
            }),
        }
    }

    /// Creates (truncating) a trace file, buffered.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<TraceWriter> {
        let file = File::create(path)?;
        Ok(TraceWriter::new(Box::new(BufWriter::new(file))))
    }

    fn inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Flushes buffered lines to the underlying writer.
    pub fn flush(&self) {
        let mut inner = self.inner();
        if inner.out.flush().is_err() {
            inner.error = true;
        }
    }

    /// Whether any write has failed (the writer is disabled after the
    /// first failure).
    pub fn had_error(&self) -> bool {
        self.inner().error
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Recorder for TraceWriter {
    fn event(&self, kind: &'static str, fields: &[(&'static str, Value)]) {
        let ts_us = self.start.elapsed().as_micros() as u64;
        let mut inner = self.inner();
        if inner.error {
            return;
        }
        let mut pairs: Vec<(String, Value)> = Vec::with_capacity(fields.len() + 3);
        pairs.push(("seq".to_string(), Value::UInt(inner.seq)));
        pairs.push(("ts_us".to_string(), Value::UInt(ts_us)));
        pairs.push(("kind".to_string(), Value::string(kind)));
        for (k, v) in fields {
            pairs.push(((*k).to_string(), v.clone()));
        }
        let line = serde::json::to_string(&Value::Object(pairs));
        inner.seq += 1;
        if writeln!(inner.out, "{line}").is_err() {
            inner.error = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{field, Obs};
    use std::sync::Arc;

    /// A shared byte buffer the writer can own while the test reads back.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_become_json_lines_with_seq_and_kind() {
        let buf = SharedBuf::default();
        let writer = Arc::new(TraceWriter::new(Box::new(buf.clone())));
        let obs = Obs::new(writer.clone());
        obs.event("t.alpha", &[("n", field::u(5)), ("s", field::s("x"))]);
        obs.event("t.beta", &[("ok", field::b(true))]);
        obs.counter("ignored", &[], 1); // metrics don't reach the trace
        writer.flush();
        let text = String::from_utf8(buf.0.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,\"ts_us\":"));
        assert!(lines[0].contains("\"kind\":\"t.alpha\""));
        assert!(lines[0].ends_with("\"n\":5,\"s\":\"x\"}"));
        assert!(lines[1].contains("\"seq\":1"));
        assert!(lines[1].contains("\"ok\":true"));
        assert!(!writer.had_error());
    }

    #[test]
    fn write_errors_are_sticky_not_panics() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let writer = TraceWriter::new(Box::new(Failing));
        writer.event("k", &[]);
        assert!(writer.had_error());
        writer.event("k", &[]); // silently dropped
    }
}
