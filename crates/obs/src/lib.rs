//! `recurs-obs` — the workspace's observability spine.
//!
//! Every layer of the system (the governed oracle in `recurs-datalog`, the
//! indexed engine in `recurs-engine`, the query service in `recurs-serve`,
//! and the CLI) reports what it is doing through one narrow interface, the
//! [`Recorder`] trait, carried around as a cheaply cloneable [`Obs`] handle:
//!
//! * **Counters** ([`Recorder::counter`]) — monotonic totals such as tuples
//!   derived or cache hits, labelled with low-cardinality dimensions
//!   (kernel, outcome, shard).
//! * **Histograms** ([`Recorder::observe`]) — latency/size distributions in
//!   base units (seconds), bucketed by the [`aggregate::Aggregator`].
//! * **Events** ([`Recorder::event`]) — structured provenance records (one
//!   JSON object per occurrence): per-iteration deltas, per-rule join
//!   fan-in/out, classification verdicts, truncation causes, injected
//!   faults. Events reconstruct *why* a run behaved as it did; counters and
//!   histograms summarize *how much*.
//!
//! Three sinks implement the trait:
//!
//! * [`aggregate::Aggregator`] — a sharded in-memory metric store that
//!   renders to Prometheus text exposition ([`prometheus`]); events are
//!   ignored.
//! * `trace::TraceWriter` (behind the `trace-json` feature) — a JSON-lines
//!   writer that persists every event with a sequence number and relative
//!   timestamp; counters/histograms are ignored.
//! * [`CaptureRecorder`] — an in-memory capture for tests.
//!
//! [`FanoutRecorder`] composes sinks, and the default handle
//! ([`Obs::noop`]) records nothing: it holds no allocation, reports
//! [`Obs::enabled`]` == false`, and every emission is a branch on a `None`.
//! Instrumented code guards field construction behind `enabled()`, so the
//! cost of carrying an `Obs` through a hot loop with the no-op recorder is
//! one pointer-sized field and a predictable branch (bounded at ≤5% on the
//! `engine_scaling` bench; see `BENCH_obs.json`).

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

pub use serde::Value;

pub mod aggregate;
pub mod context;
pub mod flight;
pub mod jsonl;
pub mod prometheus;
pub mod taxonomy;
#[cfg(feature = "trace-json")]
pub mod trace;

pub use context::{SpanGuard, SpanId, TraceCtx, TraceId, TraceIdError, TRACE_ID_MAX_LEN};
pub use flight::{FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};

/// The sink interface: everything instrumented code can emit.
///
/// All methods have no-op defaults so a sink implements only what it
/// consumes (the aggregator ignores events, the trace writer ignores
/// metrics). `name`/`kind` and label *keys* are `'static` so sinks can
/// store them without copying; label *values* and event fields are
/// borrowed and must be copied by sinks that retain them.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Whether this sink wants data at all. Instrumented code checks the
    /// handle-level [`Obs::enabled`] before building label/field arrays.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the counter `name` for the given label set.
    fn counter(&self, _name: &'static str, _labels: &[(&'static str, &str)], _delta: u64) {}

    /// Records one observation of `value` (base unit: seconds for
    /// durations) into the histogram `name` for the given label set.
    fn observe(&self, _name: &'static str, _labels: &[(&'static str, &str)], _value: f64) {}

    /// Emits a structured event of the given kind with ordered fields.
    fn event(&self, _kind: &'static str, _fields: &[(&'static str, Value)]) {}
}

/// A cheaply cloneable handle to a [`Recorder`] (or to nothing).
///
/// The default handle is the no-op: it holds no allocation and every
/// emission short-circuits. Construct an active handle with [`Obs::new`]
/// or [`Obs::fanout`].
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<dyn Recorder>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Obs(noop)"),
            Some(r) => write!(f, "Obs({r:?})"),
        }
    }
}

impl Obs {
    /// The recording-nothing handle (also [`Obs::default`]).
    pub fn noop() -> Obs {
        Obs { inner: None }
    }

    /// Wraps a single sink.
    pub fn new(recorder: Arc<dyn Recorder>) -> Obs {
        Obs {
            inner: Some(recorder),
        }
    }

    /// Composes several sinks; an empty list yields the no-op handle and a
    /// single sink is used directly (no fan-out indirection).
    pub fn fanout(mut recorders: Vec<Arc<dyn Recorder>>) -> Obs {
        match recorders.len() {
            0 => Obs::noop(),
            1 => Obs {
                inner: recorders.pop(),
            },
            _ => Obs {
                inner: Some(Arc::new(FanoutRecorder { sinks: recorders })),
            },
        }
    }

    /// The attached recorder, if any. Lets a component compose its own
    /// sink with an externally supplied handle via [`Obs::fanout`].
    pub fn recorder(&self) -> Option<Arc<dyn Recorder>> {
        self.inner.clone()
    }

    /// Whether any sink is attached and wants data. Hot paths check this
    /// before building label or field arrays.
    #[inline]
    pub fn enabled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(r) => r.enabled(),
        }
    }

    /// Adds `delta` to a labelled counter.
    #[inline]
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        if let Some(r) = &self.inner {
            r.counter(name, labels, delta);
        }
    }

    /// Records one histogram observation (seconds for durations).
    #[inline]
    pub fn observe(&self, name: &'static str, labels: &[(&'static str, &str)], value: f64) {
        if let Some(r) = &self.inner {
            r.observe(name, labels, value);
        }
    }

    /// Emits a structured event.
    #[inline]
    pub fn event(&self, kind: &'static str, fields: &[(&'static str, Value)]) {
        if let Some(r) = &self.inner {
            r.event(kind, fields);
        }
    }

    /// Starts a span that records its wall-clock duration into the
    /// histogram `name` when dropped (or [`Span::finish`]ed). With the
    /// no-op handle the span takes no timestamp and records nothing.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            obs: self.clone(),
            name,
            labels: Vec::new(),
            start: if self.enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }
}

/// A timing guard from [`Obs::span`]: observes elapsed seconds on drop.
#[derive(Debug)]
pub struct Span {
    obs: Obs,
    name: &'static str,
    labels: Vec<(&'static str, String)>,
    start: Option<Instant>,
}

impl Span {
    /// Attaches a label recorded with the final observation.
    pub fn label(mut self, key: &'static str, value: impl Into<String>) -> Span {
        if self.start.is_some() {
            self.labels.push((key, value.into()));
        }
        self
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let elapsed = start.elapsed().as_secs_f64();
            let labels: Vec<(&'static str, &str)> =
                self.labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            self.obs.observe(self.name, &labels, elapsed);
        }
    }
}

/// Shorthand constructors for event field [`Value`]s, so call sites read
/// `("iteration", field::u(i))` rather than spelling out enum variants.
pub mod field {
    use super::Value;
    use std::time::Duration;

    /// An unsigned integer field.
    pub fn u(n: u64) -> Value {
        Value::UInt(n)
    }

    /// A `usize` field (counts, sizes).
    pub fn uz(n: usize) -> Value {
        Value::UInt(n as u64)
    }

    /// A signed integer field.
    pub fn i(n: i64) -> Value {
        Value::Int(n)
    }

    /// A float field.
    pub fn f(x: f64) -> Value {
        Value::Float(x)
    }

    /// A boolean field.
    pub fn b(x: bool) -> Value {
        Value::Bool(x)
    }

    /// A string field.
    pub fn s(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// A duration field, rendered as integer microseconds (matching the
    /// `_us` convention of the stats JSON).
    pub fn us(d: Duration) -> Value {
        Value::UInt(d.as_micros() as u64)
    }
}

/// Broadcasts every emission to a list of sinks (built by [`Obs::fanout`]).
#[derive(Debug)]
pub struct FanoutRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl Recorder for FanoutRecorder {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn counter(&self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        for s in &self.sinks {
            s.counter(name, labels, delta);
        }
    }

    fn observe(&self, name: &'static str, labels: &[(&'static str, &str)], value: f64) {
        for s in &self.sinks {
            s.observe(name, labels, value);
        }
    }

    fn event(&self, kind: &'static str, fields: &[(&'static str, Value)]) {
        for s in &self.sinks {
            s.event(kind, fields);
        }
    }
}

/// One event retained by a [`CaptureRecorder`].
#[derive(Debug, Clone)]
pub struct CapturedEvent {
    /// The event kind (e.g. `engine.iteration`).
    pub kind: String,
    /// Ordered `(field, value)` pairs as emitted.
    pub fields: Vec<(String, Value)>,
}

impl CapturedEvent {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// A field as `u64`, if present and unsigned.
    pub fn uint(&self, name: &str) -> Option<u64> {
        match self.field(name) {
            Some(Value::UInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// A field as `&str`, if present and a string.
    pub fn text(&self, name: &str) -> Option<&str> {
        match self.field(name) {
            Some(Value::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// One counter series retained by a [`CaptureRecorder`].
#[derive(Debug, Clone)]
struct CapturedCounter {
    name: String,
    labels: Vec<(String, String)>,
    value: u64,
}

#[derive(Debug, Default)]
struct CaptureState {
    events: Vec<CapturedEvent>,
    counters: Vec<CapturedCounter>,
}

/// An in-memory sink for tests: retains every event and counter so suites
/// can assert on the exact provenance a run emitted.
#[derive(Debug, Default)]
pub struct CaptureRecorder {
    state: Mutex<CaptureState>,
}

impl CaptureRecorder {
    /// A fresh, empty capture.
    pub fn new() -> CaptureRecorder {
        CaptureRecorder::default()
    }

    fn state(&self) -> std::sync::MutexGuard<'_, CaptureState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// All captured events, in emission order.
    pub fn events(&self) -> Vec<CapturedEvent> {
        self.state().events.clone()
    }

    /// Captured events of one kind, in emission order.
    pub fn events_of(&self, kind: &str) -> Vec<CapturedEvent> {
        self.state()
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// The distinct event kinds seen, in first-emission order.
    pub fn kinds(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for e in &self.state().events {
            if !out.contains(&e.kind) {
                out.push(e.kind.clone());
            }
        }
        out
    }

    /// Total of a counter across all label sets containing `required`.
    pub fn counter_where(&self, name: &str, required: &[(&str, &str)]) -> u64 {
        self.state()
            .counters
            .iter()
            .filter(|c| {
                c.name == name
                    && required
                        .iter()
                        .all(|(rk, rv)| c.labels.iter().any(|(k, v)| k == rk && v == rv))
            })
            .map(|c| c.value)
            .sum()
    }
}

impl Recorder for CaptureRecorder {
    fn counter(&self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        let mut state = self.state();
        let set: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(cell) = state
            .counters
            .iter_mut()
            .find(|c| c.name == name && c.labels == set)
        {
            cell.value += delta;
        } else {
            state.counters.push(CapturedCounter {
                name: name.to_string(),
                labels: set,
                value: delta,
            });
        }
    }

    fn event(&self, kind: &'static str, fields: &[(&'static str, Value)]) {
        self.state().events.push(CapturedEvent {
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_disabled_and_silent() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        obs.counter("c", &[], 1);
        obs.observe("h", &[], 0.5);
        obs.event("k", &[("f", field::u(1))]);
        obs.span("h").label("ignored", "x").finish();
    }

    #[test]
    fn capture_retains_events_in_order() {
        let cap = Arc::new(CaptureRecorder::new());
        let obs = Obs::new(cap.clone());
        assert!(obs.enabled());
        obs.event("a.one", &[("n", field::u(7)), ("s", field::s("x"))]);
        obs.event("a.two", &[]);
        obs.event("a.one", &[("n", field::u(9))]);
        assert_eq!(cap.kinds(), ["a.one", "a.two"]);
        let ones = cap.events_of("a.one");
        assert_eq!(ones.len(), 2);
        assert_eq!(ones[0].uint("n"), Some(7));
        assert_eq!(ones[0].text("s"), Some("x"));
        assert_eq!(ones[1].uint("n"), Some(9));
        assert_eq!(ones[0].uint("missing"), None);
    }

    #[test]
    fn capture_accumulates_counters_by_label_set() {
        let cap = Arc::new(CaptureRecorder::new());
        let obs = Obs::new(cap.clone());
        obs.counter("hits", &[("shard", "0")], 2);
        obs.counter("hits", &[("shard", "0")], 3);
        obs.counter("hits", &[("shard", "1")], 10);
        assert_eq!(cap.counter_where("hits", &[("shard", "0")]), 5);
        assert_eq!(cap.counter_where("hits", &[]), 15);
        assert_eq!(cap.counter_where("misses", &[]), 0);
    }

    #[test]
    fn fanout_broadcasts_to_every_sink() {
        let a = Arc::new(CaptureRecorder::new());
        let b = Arc::new(CaptureRecorder::new());
        let obs = Obs::fanout(vec![a.clone(), b.clone()]);
        obs.event("k", &[]);
        obs.counter("c", &[], 4);
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
        assert_eq!(b.counter_where("c", &[]), 4);
        assert!(!Obs::fanout(Vec::new()).enabled());
    }

    #[test]
    fn span_records_elapsed_seconds() {
        let cap = Arc::new(CaptureRecorder::new());
        let agg = Arc::new(aggregate::Aggregator::new(2));
        let obs = Obs::fanout(vec![cap, agg.clone()]);
        obs.span("recurs_test_seconds").label("path", "p").finish();
        let snap = agg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "recurs_test_seconds");
    }
}
