//! A minimal JSON parser for reading traces back.
//!
//! The vendored `serde` is serialize-only, but `obsctl` and the bench
//! re-audit need to *read* JSON-lines traces and `BENCH_obs.json`. This
//! module is the inverse of `serde::json::to_string`: a small
//! recursive-descent parser producing [`Value`]s, with objects keeping
//! insertion order (so a parse → re-emit round trip is stable).
//!
//! Numbers parse as `UInt` when non-negative integral, `Int` when negative
//! integral, `Float` otherwise — matching what the serializer emits for
//! each variant.

use crate::Value;
use std::fmt;

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let quad = &self.bytes[self.pos..self.pos + 4];
        let text = std::str::from_utf8(quad).map_err(|_| self.err("non-ascii \\u escape"))?;
        let code = u16::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&hi) {
                                // A high surrogate must pair with \uXXXX low.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + (((hi as u32) - 0xd800) << 10)
                                        + ((lo as u32).wrapping_sub(0xdc00));
                                    char::from_u32(combined).unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(hi as u32).unwrap_or('\u{fffd}')
                            };
                            out.push(ch);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid; find the next one).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_trace_line_shape() {
        let line = r#"{"seq":3,"ts_us":1284,"kind":"engine.iteration","delta_in":9,"neg":-2,"f":0.5,"ok":true,"none":null}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("seq"), Some(&Value::UInt(3)));
        assert_eq!(v.get("kind"), Some(&Value::Str("engine.iteration".into())));
        assert_eq!(v.get("neg"), Some(&Value::Int(-2)));
        assert_eq!(v.get("f"), Some(&Value::Float(0.5)));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
        // Re-emission is stable (insertion order preserved).
        assert_eq!(serde::json::to_string(&v), line);
    }

    #[test]
    fn parses_nested_arrays_and_objects() {
        let v = parse(r#"{"rows":[{"a":1},{"a":2}],"empty":[],"o":{}}"#).unwrap();
        match v.get("rows") {
            Some(Value::Array(rows)) => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1].get("a"), Some(&Value::UInt(2)));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v.get("empty"), Some(&Value::Array(Vec::new())));
        assert_eq!(v.get("o"), Some(&Value::Object(Vec::new())));
    }

    #[test]
    fn string_escapes_decode() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::Str("a\"b\\c\ndAé😀".into()));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![Value::UInt(1), Value::UInt(2)]))
        );
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "nul",
            "+1",
            "\"\\x\"",
            "\"\\u12\"",
        ] {
            assert!(parse(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn numbers_pick_the_right_variant() {
        assert_eq!(parse("0").unwrap(), Value::UInt(0));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("-0.25").unwrap(), Value::Float(-0.25));
    }
}
