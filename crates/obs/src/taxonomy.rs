//! The event taxonomy: every event kind the workspace emits, in one
//! registry.
//!
//! [`EVENTS`] is the single source of truth for what a `kind` field may
//! say. The taxonomy test asserts that every kind each layer actually
//! emits is registered here, `obsctl validate` rejects trace files with
//! unknown kinds, and the table in DESIGN §4e is generated from
//! [`markdown_table`] so the docs cannot drift from the code.

/// One registered event kind.
#[derive(Debug, Clone, Copy)]
pub struct EventKind {
    /// The `kind` string as emitted (e.g. `engine.iteration`).
    pub kind: &'static str,
    /// The layer that emits it.
    pub layer: &'static str,
    /// What one occurrence means.
    pub doc: &'static str,
}

/// Every event kind the workspace emits, grouped by layer.
pub const EVENTS: &[EventKind] = &[
    EventKind {
        kind: "span",
        layer: "obs",
        doc: "One finished span of a traced request: `name`, `span`, `parent` (0 = root), `start_us`/`dur_us` relative to the trace context, and the `trace` id.",
    },
    EventKind {
        kind: "classify.verdict",
        layer: "cli",
        doc: "The classification verdict for a program: per-component class, cycle weights, one-directionality/rotation flags, chosen kernel, and rank bound.",
    },
    EventKind {
        kind: "eval.iteration",
        layer: "datalog",
        doc: "One semi-naive iteration of the governed oracle: delta sizes in and out.",
    },
    EventKind {
        kind: "eval.complete",
        layer: "datalog",
        doc: "The governed oracle reached fixpoint: iterations and tuples derived.",
    },
    EventKind {
        kind: "eval.truncated",
        layer: "datalog",
        doc: "The governed oracle stopped early: which budget tripped and where.",
    },
    EventKind {
        kind: "engine.dispatch",
        layer: "engine",
        doc: "The engine chose a kernel for a program: class, kernel, and why.",
    },
    EventKind {
        kind: "engine.start",
        layer: "engine",
        doc: "A kernel run began: kernel, mode, and input relation sizes.",
    },
    EventKind {
        kind: "engine.iteration",
        layer: "engine",
        doc: "One kernel iteration: delta sizes in and out.",
    },
    EventKind {
        kind: "engine.rule",
        layer: "engine",
        doc: "One rule application inside an iteration: join fan-in/out.",
    },
    EventKind {
        kind: "engine.complete",
        layer: "engine",
        doc: "A kernel run reached fixpoint: iterations, tuples, and duration.",
    },
    EventKind {
        kind: "engine.truncated",
        layer: "engine",
        doc: "A kernel run stopped on budget: which ceiling tripped.",
    },
    EventKind {
        kind: "engine.degraded_retry",
        layer: "engine",
        doc: "A specialized kernel failed its safety check and the engine fell back to saturation.",
    },
    EventKind {
        kind: "engine.worker_panic",
        layer: "engine",
        doc: "A parallel worker panicked; the run degraded to the sequential path.",
    },
    EventKind {
        kind: "fault.injected",
        layer: "engine/ivm/serve/net",
        doc: "A fault-injection hook fired (tests only): site and fault kind.",
    },
    EventKind {
        kind: "ivm.saturate",
        layer: "ivm",
        doc: "A materialization was (re)built from scratch: tuples and duration.",
    },
    EventKind {
        kind: "ivm.patch",
        layer: "ivm",
        doc: "An incremental patch was applied: maintenance path, delta sizes, and duration.",
    },
    EventKind {
        kind: "serve.query",
        layer: "serve",
        doc: "One answered query: kernel, cache outcome, queue wait, eval time, answers, and outcome.",
    },
    EventKind {
        kind: "serve.shed",
        layer: "serve",
        doc: "A query was shed at admission: how long it waited for a permit.",
    },
    EventKind {
        kind: "serve.update",
        layer: "serve",
        doc: "A fact update was applied: ops, maintenance path, and new snapshot version.",
    },
    EventKind {
        kind: "serve.snapshot",
        layer: "serve",
        doc: "A new snapshot was published: version and relation sizes.",
    },
    EventKind {
        kind: "serve.explain",
        layer: "serve",
        doc: "An `!explain` audit was produced: trace id, kernel, cache outcome, and span count.",
    },
    EventKind {
        kind: "serve.why",
        layer: "serve",
        doc: "A `why <fact>` provenance request: the fact, whether it was derivable, and the tree depth.",
    },
    EventKind {
        kind: "net.admission",
        layer: "net",
        doc: "A connection hit the admission gate: accepted or shed, with the active count.",
    },
    EventKind {
        kind: "net.shed",
        layer: "net",
        doc: "A request was shed by the service while the server stayed up: queue-wait details.",
    },
    EventKind {
        kind: "net.drain",
        layer: "net",
        doc: "A drain phase transition: started, forced (deadline expired), or complete.",
    },
    EventKind {
        kind: "net.frame_error",
        layer: "net",
        doc: "A connection produced an unusable frame: oversized, torn, or malformed.",
    },
    EventKind {
        kind: "net.postmortem",
        layer: "net",
        doc: "The flight recorder was dumped to a postmortem file: trigger and event count.",
    },
];

/// Whether `kind` is a registered event kind.
pub fn is_known(kind: &str) -> bool {
    EVENTS.iter().any(|e| e.kind == kind)
}

/// Looks up a registered kind.
pub fn lookup(kind: &str) -> Option<&'static EventKind> {
    EVENTS.iter().find(|e| e.kind == kind)
}

/// Renders the registry as the markdown table embedded in DESIGN §4e
/// (between the `taxonomy:begin`/`taxonomy:end` markers).
pub fn markdown_table() -> String {
    let mut out = String::from("| Kind | Layer | Meaning |\n|---|---|---|\n");
    for e in EVENTS {
        out.push_str(&format!("| `{}` | {} | {} |\n", e.kind, e.layer, e.doc));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicates() {
        for (i, a) in EVENTS.iter().enumerate() {
            for b in &EVENTS[i + 1..] {
                assert_ne!(a.kind, b.kind, "duplicate taxonomy entry {}", a.kind);
            }
        }
    }

    #[test]
    fn lookup_and_is_known_agree() {
        assert!(is_known("serve.query"));
        assert!(is_known("span"));
        assert!(!is_known("serve.unheard_of"));
        assert_eq!(lookup("net.drain").map(|e| e.layer), Some("net"));
        assert!(lookup("nope").is_none());
    }

    #[test]
    fn markdown_table_lists_every_kind_once() {
        let table = markdown_table();
        for e in EVENTS {
            assert_eq!(
                table.matches(&format!("| `{}` |", e.kind)).count(),
                1,
                "kind {} missing or duplicated in table",
                e.kind
            );
        }
        assert!(table.starts_with("| Kind | Layer | Meaning |"));
    }
}
