//! Prometheus text exposition rendering.
//!
//! [`render`] turns an [`Aggregator`](crate::aggregate::Aggregator)
//! snapshot into the classic text format: one `# TYPE` line per metric
//! family, then one sample line per series. Histograms expand into
//! cumulative `_bucket{le=...}` samples plus `_sum` and `_count`. The
//! output ends with a `# EOF` line (the OpenMetrics terminator), which the
//! serve protocol also uses to frame its one multi-line reply (`!metrics`).

use crate::aggregate::{Metric, MetricValue};
use std::fmt::Write as _;

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline are backslash-escaped.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
}

/// Renders a float the way Prometheus expects (`+Inf` aside, plain `{}`
/// formatting is valid: integers render without a dot, which the format
/// accepts).
fn render_bound(b: f64) -> String {
    format!("{b}")
}

/// Renders sorted metric series as Prometheus text exposition, terminated
/// by `# EOF`.
pub fn render(metrics: &[Metric]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for m in metrics {
        if last_name != Some(m.name) {
            let kind = match m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {kind}", m.name);
            last_name = Some(m.name);
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(m.name);
                write_labels(&mut out, &m.labels, None);
                let _ = writeln!(out, " {v}");
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, count) in h.buckets.iter().enumerate() {
                    cumulative += count;
                    let le = if i < h.bounds.len() {
                        render_bound(h.bounds[i])
                    } else {
                        "+Inf".to_string()
                    };
                    let _ = write!(out, "{}_bucket", m.name);
                    write_labels(&mut out, &m.labels, Some(("le", &le)));
                    let _ = writeln!(out, " {cumulative}");
                }
                let _ = write!(out, "{}_sum", m.name);
                write_labels(&mut out, &m.labels, None);
                let _ = writeln!(out, " {}", h.sum);
                let _ = write!(out, "{}_count", m.name);
                write_labels(&mut out, &m.labels, None);
                let _ = writeln!(out, " {}", h.count);
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregator;
    use crate::Recorder as _;

    #[test]
    fn counters_render_with_type_headers_and_labels() {
        let agg = Aggregator::new(2);
        agg.counter("recurs_q_total", &[("kernel", "magic")], 3);
        agg.counter("recurs_q_total", &[("kernel", "bounded")], 1);
        agg.counter("recurs_snap_total", &[], 2);
        let text = agg.prometheus_text();
        assert!(text.contains("# TYPE recurs_q_total counter"));
        assert!(text.contains("recurs_q_total{kernel=\"bounded\"} 1"));
        assert!(text.contains("recurs_q_total{kernel=\"magic\"} 3"));
        assert!(text.contains("recurs_snap_total 2"));
        assert!(text.ends_with("# EOF\n"));
        // One TYPE line per family, not per series.
        assert_eq!(text.matches("# TYPE recurs_q_total").count(), 1);
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let agg = Aggregator::new(1);
        agg.observe("recurs_lat_seconds", &[("path", "p")], 0.0005);
        agg.observe("recurs_lat_seconds", &[("path", "p")], 0.0007);
        agg.observe("recurs_lat_seconds", &[("path", "p")], 2.0);
        let text = agg.prometheus_text();
        assert!(text.contains("# TYPE recurs_lat_seconds histogram"));
        assert!(text.contains("recurs_lat_seconds_bucket{path=\"p\",le=\"0.001\"} 2"));
        assert!(text.contains("recurs_lat_seconds_bucket{path=\"p\",le=\"5\"} 3"));
        assert!(text.contains("recurs_lat_seconds_bucket{path=\"p\",le=\"+Inf\"} 3"));
        assert!(text.contains("recurs_lat_seconds_count{path=\"p\"} 3"));
        assert!(text.contains("recurs_lat_seconds_sum{path=\"p\"} 2.0012"));
    }

    #[test]
    fn label_values_escape() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn empty_snapshot_is_just_the_terminator() {
        let agg = Aggregator::new(1);
        assert_eq!(agg.prometheus_text(), "# EOF\n");
    }
}
