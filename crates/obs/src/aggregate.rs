//! Sharded in-memory metric aggregation.
//!
//! The [`Aggregator`] is the metrics sink: counters and histograms land in
//! one of `N` independently locked shards (picked by hashing the metric
//! name + label set), so concurrent workers rarely contend on the same
//! mutex. Events are ignored — provenance goes to the trace sink. Reads
//! ([`Aggregator::snapshot`], [`Aggregator::counter_where`]) walk every
//! shard; they run at query/report time, never on the hot path.

use crate::Recorder;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Histogram bucket upper bounds for durations, in seconds: 1µs … 60s.
/// Sub-decade points (2.5×/5×) cover the sub-millisecond range so
/// microsecond-scale warm-cache hits spread across buckets instead of
/// collapsing into one — percentile estimates for the serve hit path stay
/// meaningful. Values above the last bound land in the implicit `+Inf`
/// bucket.
pub const SECONDS_BOUNDS: &[f64] = &[
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 0.1, 0.5,
    1.0, 5.0, 10.0, 60.0,
];

/// A label set, sorted by key (the aggregation identity of a series).
pub type LabelSet = Vec<(String, String)>;

fn label_set(labels: &[(&'static str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

/// A fixed-bound histogram: cumulative-ready bucket counts plus sum/count.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket upper bounds; `buckets` has one extra slot for `+Inf`.
    pub bounds: &'static [f64],
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Histogram {
        Histogram {
            bounds,
            buckets: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.sum += value;
        self.count += 1;
    }
}

/// The value of one metric series in a [`snapshot`](Aggregator::snapshot).
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter(u64),
    /// A distribution.
    Histogram(Histogram),
}

/// One metric series: name, sorted labels, and its current value.
#[derive(Debug, Clone)]
pub struct Metric {
    /// The metric name (e.g. `recurs_serve_queries_total`).
    pub name: &'static str,
    /// The series' label set, sorted by key.
    pub labels: LabelSet,
    /// The current value.
    pub value: MetricValue,
}

#[derive(Debug)]
enum Cell {
    Counter(u64),
    Histogram(Histogram),
}

type Shard = HashMap<(&'static str, LabelSet), Cell>;

/// The sharded metric store. See the [module docs](self).
#[derive(Debug)]
pub struct Aggregator {
    shards: Box<[Mutex<Shard>]>,
}

impl Default for Aggregator {
    fn default() -> Aggregator {
        Aggregator::new(8)
    }
}

impl Aggregator {
    /// Creates an aggregator with the given shard count (min 1).
    pub fn new(shards: usize) -> Aggregator {
        let n = shards.max(1);
        Aggregator {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, name: &str, labels: &LabelSet) -> MutexGuard<'_, Shard> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        labels.hash(&mut h);
        let idx = (h.finish() as usize) % self.shards.len();
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Current value of the counter with *exactly* this label set.
    pub fn counter_value(&self, name: &str, labels: &[(&'static str, &str)]) -> u64 {
        let set = label_set(labels);
        let shard = self.shard(name, &set);
        match shard.iter().find(|((n, l), _)| *n == name && *l == set) {
            Some((_, Cell::Counter(v))) => *v,
            _ => 0,
        }
    }

    /// Sums a counter across every series whose labels contain all of
    /// `required` (an empty slice sums all series of that name).
    pub fn counter_where(&self, name: &str, required: &[(&str, &str)]) -> u64 {
        let mut total = 0;
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for ((n, labels), cell) in shard.iter() {
                if *n == name
                    && required
                        .iter()
                        .all(|(rk, rv)| labels.iter().any(|(k, v)| k == rk && v == rv))
                {
                    if let Cell::Counter(v) = cell {
                        total += *v;
                    }
                }
            }
        }
        total
    }

    /// Every series currently held, sorted by `(name, labels)` so output
    /// is deterministic.
    pub fn snapshot(&self) -> Vec<Metric> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for ((name, labels), cell) in shard.iter() {
                out.push(Metric {
                    name,
                    labels: labels.clone(),
                    value: match cell {
                        Cell::Counter(v) => MetricValue::Counter(*v),
                        Cell::Histogram(h) => MetricValue::Histogram(h.clone()),
                    },
                });
            }
        }
        out.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
        out
    }

    /// Renders the current contents in Prometheus text exposition format
    /// (see [`crate::prometheus::render`]).
    pub fn prometheus_text(&self) -> String {
        crate::prometheus::render(&self.snapshot())
    }
}

impl Recorder for Aggregator {
    fn counter(&self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        let set = label_set(labels);
        let mut shard = self.shard(name, &set);
        match shard.entry((name, set)).or_insert(Cell::Counter(0)) {
            Cell::Counter(v) => *v += delta,
            // A name can't be both a counter and a histogram; if a caller
            // mixes kinds, the first emission wins and the rest are dropped
            // rather than corrupting the series.
            Cell::Histogram(_) => {}
        }
    }

    fn observe(&self, name: &'static str, labels: &[(&'static str, &str)], value: f64) {
        let set = label_set(labels);
        let mut shard = self.shard(name, &set);
        match shard
            .entry((name, set))
            .or_insert_with(|| Cell::Histogram(Histogram::new(SECONDS_BOUNDS)))
        {
            Cell::Histogram(h) => h.record(value),
            Cell::Counter(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_per_label_set() {
        let agg = Aggregator::new(4);
        agg.counter("q", &[("kernel", "magic")], 1);
        agg.counter("q", &[("kernel", "magic")], 2);
        agg.counter("q", &[("kernel", "saturate")], 5);
        assert_eq!(agg.counter_value("q", &[("kernel", "magic")]), 3);
        assert_eq!(agg.counter_value("q", &[("kernel", "saturate")]), 5);
        assert_eq!(agg.counter_value("q", &[("kernel", "bounded")]), 0);
        assert_eq!(agg.counter_where("q", &[]), 8);
        assert_eq!(agg.counter_where("q", &[("kernel", "magic")]), 3);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let agg = Aggregator::new(4);
        agg.counter("c", &[("a", "1"), ("b", "2")], 1);
        agg.counter("c", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(agg.counter_value("c", &[("a", "1"), ("b", "2")]), 2);
        assert_eq!(agg.snapshot().len(), 1);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let agg = Aggregator::new(1);
        agg.observe("lat", &[], 0.0005); // ≤ 1e-3
        agg.observe("lat", &[], 0.02); // ≤ 0.1
        agg.observe("lat", &[], 120.0); // +Inf
        let snap = agg.snapshot();
        assert_eq!(snap.len(), 1);
        match &snap[0].value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 3);
                assert!((h.sum - 120.0205).abs() < 1e-9);
                assert_eq!(h.buckets.iter().sum::<u64>(), 3);
                assert_eq!(h.buckets[h.bounds.len()], 1); // +Inf slot
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn microsecond_scale_hits_spread_across_sub_millisecond_buckets() {
        // Warm-cache latencies (a few µs to a few hundred µs) must land in
        // distinct buckets, not collapse into one — otherwise serve p50 on
        // the hit path is meaningless.
        let agg = Aggregator::new(1);
        for v in [2e-6, 8e-6, 3e-5, 2e-4, 7e-4] {
            agg.observe("hit", &[], v);
        }
        let snap = agg.snapshot();
        match &snap[0].value {
            MetricValue::Histogram(h) => {
                let occupied = h.buckets.iter().filter(|c| **c > 0).count();
                assert_eq!(occupied, 5, "each observation in its own bucket: {h:?}");
                // And the sub-millisecond range alone offers enough
                // resolution: at least 8 bounds at or below 1ms.
                assert!(h.bounds.iter().filter(|b| **b <= 1e-3).count() >= 8);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn mixed_kind_emissions_do_not_corrupt_a_series() {
        let agg = Aggregator::new(1);
        agg.counter("m", &[], 7);
        agg.observe("m", &[], 1.0);
        assert_eq!(agg.counter_value("m", &[]), 7);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let agg = Aggregator::new(8);
        agg.counter("b", &[], 1);
        agg.counter("a", &[("x", "2")], 1);
        agg.counter("a", &[("x", "1")], 1);
        let names: Vec<_> = agg
            .snapshot()
            .iter()
            .map(|m| (m.name, m.labels.clone()))
            .collect();
        assert_eq!(
            names,
            [
                ("a", vec![("x".to_string(), "1".to_string())]),
                ("a", vec![("x".to_string(), "2".to_string())]),
                ("b", vec![]),
            ]
        );
    }
}
