//! `obsctl` — read a JSON-lines trace (or flight-recorder postmortem),
//! validate it, and reconstruct per-request span trees.
//!
//! ```text
//! obsctl validate <trace.jsonl>          # CI lane: well-formedness gate
//! obsctl spans <trace.jsonl>             # indented span trees per trace
//! obsctl slow <trace.jsonl> [--top K]    # slowest requests + critical paths
//! obsctl taxonomy                        # regenerate the DESIGN §4e table
//! ```
//!
//! `validate` exits non-zero if any line fails to parse, any `kind` is
//! unknown to the taxonomy, sequence numbers go backwards, a span's
//! parent does not resolve within its trace, or a trace id is orphaned
//! (tagged events but no spans).

use recurs_obs::{jsonl, taxonomy, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One span record pulled out of the trace.
#[derive(Debug, Clone)]
struct SpanRec {
    trace: String,
    name: String,
    id: u64,
    parent: u64,
    start_us: u64,
    dur_us: u64,
}

/// Everything read from one trace file.
#[derive(Debug, Default)]
struct Trace {
    /// (line number, parsed object) for every line.
    lines: Vec<(usize, Value)>,
    /// Span records in file order.
    spans: Vec<SpanRec>,
    /// Trace id -> number of tagged events (span or not).
    tagged: BTreeMap<String, usize>,
    /// Problems found while loading (line number, message).
    problems: Vec<(usize, String)>,
}

fn uint(v: &Value, key: &str) -> Option<u64> {
    match v.get(key) {
        Some(Value::UInt(n)) => Some(*n),
        _ => None,
    }
}

fn text<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.get(key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn load(path: &str) -> Result<Trace, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut trace = Trace::default();
    let mut last_seq: Option<u64> = None;
    for (idx, line) in content.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value = match jsonl::parse(line) {
            Ok(v) => v,
            Err(e) => {
                trace
                    .problems
                    .push((lineno, format!("unparseable line: {e}")));
                continue;
            }
        };
        let Some(kind) = text(&value, "kind").map(str::to_string) else {
            trace
                .problems
                .push((lineno, "missing 'kind' field".to_string()));
            continue;
        };
        match uint(&value, "seq") {
            Some(seq) => {
                if let Some(prev) = last_seq {
                    if seq <= prev {
                        trace
                            .problems
                            .push((lineno, format!("seq {seq} not after {prev}")));
                    }
                }
                last_seq = Some(seq);
            }
            None => trace
                .problems
                .push((lineno, "missing 'seq' field".to_string())),
        }
        if !taxonomy::is_known(&kind) {
            trace
                .problems
                .push((lineno, format!("unknown event kind '{kind}'")));
        }
        if let Some(id) = text(&value, "trace") {
            *trace.tagged.entry(id.to_string()).or_insert(0) += 1;
        }
        if kind == "span" {
            match (
                text(&value, "trace"),
                text(&value, "name"),
                uint(&value, "span"),
                uint(&value, "parent"),
                uint(&value, "start_us"),
                uint(&value, "dur_us"),
            ) {
                (Some(tid), Some(name), Some(id), Some(parent), Some(start), Some(dur))
                    if id > 0 =>
                {
                    trace.spans.push(SpanRec {
                        trace: tid.to_string(),
                        name: name.to_string(),
                        id,
                        parent,
                        start_us: start,
                        dur_us: dur,
                    });
                }
                _ => trace
                    .problems
                    .push((lineno, "span event missing required fields".to_string())),
            }
        }
        trace.lines.push((lineno, value));
    }
    Ok(trace)
}

/// Span records grouped by trace id, each group sorted by start time.
fn by_trace(spans: &[SpanRec]) -> BTreeMap<String, Vec<SpanRec>> {
    let mut groups: BTreeMap<String, Vec<SpanRec>> = BTreeMap::new();
    for s in spans {
        groups.entry(s.trace.clone()).or_default().push(s.clone());
    }
    for group in groups.values_mut() {
        group.sort_by_key(|s| (s.start_us, s.id));
    }
    groups
}

fn validate(path: &str) -> ExitCode {
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obsctl: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut problems = trace.problems.clone();
    let groups = by_trace(&trace.spans);
    for (tid, spans) in &groups {
        let ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        for s in spans {
            if s.parent != 0 && !ids.contains(&s.parent) {
                problems.push((
                    0,
                    format!(
                        "trace {tid}: span {} ('{}') has unresolved parent {}",
                        s.id, s.name, s.parent
                    ),
                ));
            }
        }
        if !spans.iter().any(|s| s.parent == 0) {
            problems.push((0, format!("trace {tid}: no root span")));
        }
    }
    for (tid, count) in &trace.tagged {
        if !groups.contains_key(tid) {
            problems.push((
                0,
                format!("trace {tid}: orphaned trace id ({count} tagged events, no spans)"),
            ));
        }
    }
    if problems.is_empty() {
        println!(
            "ok: {} events, {} spans across {} traces, all kinds known",
            trace.lines.len(),
            trace.spans.len(),
            groups.len()
        );
        ExitCode::SUCCESS
    } else {
        for (lineno, msg) in problems.iter().take(20) {
            if *lineno > 0 {
                eprintln!("{path}:{lineno}: {msg}");
            } else {
                eprintln!("{path}: {msg}");
            }
        }
        eprintln!("obsctl: {} problem(s) in {path}", problems.len());
        ExitCode::FAILURE
    }
}

fn print_tree(spans: &[SpanRec], parent: u64, depth: usize, out: &mut String) {
    for s in spans.iter().filter(|s| s.parent == parent) {
        out.push_str(&format!(
            "{}{} {}us (start +{}us)\n",
            "  ".repeat(depth + 1),
            s.name,
            s.dur_us,
            s.start_us
        ));
        print_tree(spans, s.id, depth + 1, out);
    }
}

fn spans_cmd(path: &str) -> ExitCode {
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obsctl: {e}");
            return ExitCode::FAILURE;
        }
    };
    let groups = by_trace(&trace.spans);
    if groups.is_empty() {
        println!("no spans in {path}");
        return ExitCode::SUCCESS;
    }
    for (tid, spans) in &groups {
        let mut out = format!("trace {tid}\n");
        print_tree(spans, 0, 0, &mut out);
        print!("{out}");
    }
    ExitCode::SUCCESS
}

/// The chain of maximum-duration children from a root: the critical path.
fn critical_path(spans: &[SpanRec], root: &SpanRec) -> Vec<String> {
    let mut path = vec![root.name.clone()];
    let mut at = root.id;
    loop {
        let next = spans
            .iter()
            .filter(|s| s.parent == at)
            .max_by_key(|s| s.dur_us);
        match next {
            Some(s) => {
                path.push(s.name.clone());
                at = s.id;
            }
            None => return path,
        }
    }
}

fn slow(path: &str, top: usize) -> ExitCode {
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obsctl: {e}");
            return ExitCode::FAILURE;
        }
    };
    let groups = by_trace(&trace.spans);
    let mut roots: Vec<(&String, &Vec<SpanRec>, &SpanRec)> = Vec::new();
    for (tid, spans) in &groups {
        for root in spans.iter().filter(|s| s.parent == 0) {
            roots.push((tid, spans, root));
        }
    }
    roots.sort_by_key(|r| std::cmp::Reverse(r.2.dur_us));
    if roots.is_empty() {
        println!("no root spans in {path}");
        return ExitCode::SUCCESS;
    }
    println!(
        "top {} of {} requests by root-span duration:",
        top.min(roots.len()),
        roots.len()
    );
    for (tid, spans, root) in roots.iter().take(top) {
        println!("\ntrace {tid}: {} {}us", root.name, root.dur_us);
        let mut children: Vec<&SpanRec> = spans.iter().filter(|s| s.parent == root.id).collect();
        children.sort_by_key(|s| s.start_us);
        let mut accounted = 0u64;
        for c in &children {
            let pct = if root.dur_us > 0 {
                c.dur_us as f64 * 100.0 / root.dur_us as f64
            } else {
                0.0
            };
            accounted += c.dur_us;
            println!("  {:<16} {:>8}us  {:>5.1}%", c.name, c.dur_us, pct);
        }
        if root.dur_us > accounted && !children.is_empty() {
            println!("  {:<16} {:>8}us", "(unaccounted)", root.dur_us - accounted);
        }
        println!(
            "  critical path: {}",
            critical_path(spans, root).join(" > ")
        );
    }
    ExitCode::SUCCESS
}

const USAGE: &str = "usage:
  obsctl validate <trace.jsonl>
  obsctl spans <trace.jsonl>
  obsctl slow <trace.jsonl> [--top K]
  obsctl taxonomy";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("validate") if args.len() == 2 => validate(&args[1]),
        Some("taxonomy") if args.len() == 1 => {
            print!("{}", taxonomy::markdown_table());
            ExitCode::SUCCESS
        }
        Some("spans") if args.len() == 2 => spans_cmd(&args[1]),
        Some("slow") if args.len() >= 2 => {
            let mut top = 5usize;
            let mut i = 2;
            while i < args.len() {
                if args[i] == "--top" && i + 1 < args.len() {
                    match args[i + 1].parse() {
                        Ok(k) => top = k,
                        Err(_) => {
                            eprintln!("obsctl: --top wants a number, got '{}'", args[i + 1]);
                            return ExitCode::FAILURE;
                        }
                    }
                    i += 2;
                } else {
                    eprintln!("obsctl: unknown argument '{}'", args[i]);
                    return ExitCode::FAILURE;
                }
            }
            slow(&args[1], top.max(1))
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
