//! The flight recorder: a fixed-size ring of recent events, always on.
//!
//! A [`FlightRecorder`] keeps the last `capacity` events in a ring buffer
//! so that a worker panic or a forced drain can dump the moments leading
//! up to the incident ([`FlightRecorder::to_jsonl`]) into a postmortem
//! file. It is designed to sit in every fan-out permanently:
//!
//! * **Lock-light writes.** A writer claims a slot with one atomic
//!   `fetch_add`, then locks *only that slot's* mutex to store the event.
//!   Concurrent writers contend only when they hash to the same slot —
//!   i.e. when the ring has wrapped a full lap between them — so the hot
//!   path never serializes on a global lock.
//! * **Bounded memory.** The ring never grows; old events are overwritten
//!   in seq order.
//! * **Metrics are ignored.** Counters and histograms already live in the
//!   [`Aggregator`](crate::aggregate::Aggregator); the recorder keeps only
//!   event provenance, which is what a postmortem needs.
//!
//! The dump format matches the JSON-lines trace sink (`seq`, `ts_us`,
//! `kind`, then the event's own fields), so `obsctl` reads postmortems and
//! trace files interchangeably.

use crate::{Recorder, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Default ring capacity: enough to cover several requests' worth of
/// events without holding meaningful memory.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

/// One event retained in the ring.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Global emission index (monotone across wraps).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// The event kind.
    pub kind: &'static str,
    /// The event's fields, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

/// The ring buffer. See the [module docs](self).
#[derive(Debug)]
pub struct FlightRecorder {
    head: AtomicU64,
    slots: Box<[Mutex<Option<FlightEvent>>]>,
    epoch: Instant,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a ring holding the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let n = capacity.max(1);
        FlightRecorder {
            head: AtomicU64::new(0),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            epoch: Instant::now(),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (not the number retained).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|slot| {
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .as_ref()
                    .cloned()
            })
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Renders the retained events as JSON lines in the trace-sink shape
    /// (`{"seq":N,"ts_us":T,"kind":K,...fields}`), oldest first. This is
    /// the postmortem payload.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let mut pairs: Vec<(String, Value)> = Vec::with_capacity(e.fields.len() + 3);
            pairs.push(("seq".to_string(), Value::UInt(e.seq)));
            pairs.push(("ts_us".to_string(), Value::UInt(e.ts_us)));
            pairs.push(("kind".to_string(), Value::string(e.kind)));
            for (k, v) in &e.fields {
                pairs.push(((*k).to_string(), v.clone()));
            }
            out.push_str(&serde::json::to_string(&Value::Object(pairs)));
            out.push('\n');
        }
        out
    }
}

impl Recorder for FlightRecorder {
    fn event(&self, kind: &'static str, fields: &[(&'static str, Value)]) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        let slot = (seq % self.slots.len() as u64) as usize;
        let event = FlightEvent {
            seq,
            ts_us,
            kind,
            fields: fields.iter().map(|(k, v)| (*k, v.clone())).collect(),
        };
        *self.slots[slot]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{field, Obs};
    use std::sync::Arc;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let flight = Arc::new(FlightRecorder::new(4));
        let obs = Obs::new(flight.clone());
        for i in 0..10u64 {
            obs.event("t.tick", &[("i", field::u(i))]);
        }
        let events = flight.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            [6, 7, 8, 9]
        );
        assert_eq!(events[3].fields[0].1, Value::UInt(9));
        assert_eq!(flight.recorded(), 10);
    }

    #[test]
    fn metrics_are_ignored() {
        let flight = FlightRecorder::new(4);
        flight.counter("c", &[], 1);
        flight.observe("h", &[], 0.5);
        assert!(flight.events().is_empty());
    }

    #[test]
    fn jsonl_dump_matches_the_trace_shape() {
        let flight = Arc::new(FlightRecorder::new(8));
        let obs = Obs::new(flight.clone());
        obs.event("net.shed", &[("active", field::uz(3))]);
        obs.event("net.drain", &[("phase", field::s("started"))]);
        let dump = flight.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,\"ts_us\":"));
        assert!(lines[0].ends_with("\"kind\":\"net.shed\",\"active\":3}"));
        assert!(lines[1].contains("\"kind\":\"net.drain\""));
        assert!(lines[1].contains("\"phase\":\"started\""));
    }

    #[test]
    fn concurrent_writers_do_not_lose_the_latest_lap() {
        let flight = Arc::new(FlightRecorder::new(64));
        let obs = Obs::new(flight.clone());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let obs = obs.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        obs.event("t.w", &[("t", field::u(t)), ("i", field::u(i))]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = flight.events();
        assert_eq!(events.len(), 64);
        assert_eq!(flight.recorded(), 400);
        // The retained window is exactly the last lap of seqs.
        for e in &events {
            assert!(e.seq >= 400 - 64);
        }
    }
}
