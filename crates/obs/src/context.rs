//! Request-scoped trace contexts and hierarchical spans.
//!
//! A [`TraceId`] names one request end to end. The serve/net boundary
//! mints one per request (or validates a client-supplied `@trace=<id>`
//! prefix), wraps the layer's [`Obs`] handle in a [`TraceCtx`], and passes
//! the context's scoped handle down the call chain. Every event emitted
//! through that handle — admission, cache probe, kernel dispatch, ivm
//! patch — carries a `trace` field, so a JSON-lines trace can be grouped
//! back into per-request stories.
//!
//! On top of the id, a context records **hierarchical spans**: each
//! [`TraceCtx::span`] allocates a [`SpanId`], remembers its parent, and on
//! drop emits a `span` event with `name`/`span`/`parent`/`start_us`/
//! `dur_us` (offsets relative to the context's creation). Span events are
//! plain events — they flow through the same sinks as everything else and
//! need no new recorder surface. `obsctl` reconstructs the trees.
//!
//! With a no-op base handle the scoped handle is also no-op: spans take no
//! timestamps and emit nothing, so untraced requests pay only an id
//! allocation.

use crate::{Obs, Recorder, Value};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A request-scoped trace identifier (64 bits, rendered as 16 hex chars).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceId(u64);

/// Longest accepted textual trace id: 16 hex characters (64 bits).
pub const TRACE_ID_MAX_LEN: usize = 16;

impl TraceId {
    /// Wraps a raw 64-bit id.
    pub fn from_u64(id: u64) -> TraceId {
        TraceId(id)
    }

    /// The raw 64-bit id.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Parses a client-supplied id: 1..=16 ASCII hex characters. Anything
    /// else (empty, oversized, non-hex) is rejected so the protocol layer
    /// can answer with a typed error instead of guessing.
    pub fn parse(text: &str) -> Result<TraceId, TraceIdError> {
        if text.is_empty() {
            return Err(TraceIdError::Empty);
        }
        if text.len() > TRACE_ID_MAX_LEN {
            return Err(TraceIdError::TooLong(text.len()));
        }
        if !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(TraceIdError::NotHex);
        }
        u64::from_str_radix(text, 16)
            .map(TraceId)
            .map_err(|_| TraceIdError::NotHex)
    }

    /// Mints a fresh id: a process-global counter hashed with the pid and
    /// wall clock, so concurrent mints and separate processes diverge
    /// without needing a random-number dependency.
    pub fn mint() -> TraceId {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let mut h = DefaultHasher::new();
        COUNTER.fetch_add(1, Ordering::Relaxed).hash(&mut h);
        std::process::id().hash(&mut h);
        if let Ok(now) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
            now.as_secs().hash(&mut h);
            now.subsec_nanos().hash(&mut h);
        }
        let id = h.finish();
        // Reserve 0 for "never minted" sentinels in debugging output.
        TraceId(if id == 0 { 1 } else { id })
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Why a textual trace id was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceIdError {
    /// The id was empty.
    Empty,
    /// The id exceeded [`TRACE_ID_MAX_LEN`] characters (actual length).
    TooLong(usize),
    /// The id contained a non-hex character.
    NotHex,
}

impl fmt::Display for TraceIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIdError::Empty => write!(f, "trace id is empty"),
            TraceIdError::TooLong(n) => {
                write!(f, "trace id is {n} chars (max {TRACE_ID_MAX_LEN} hex)")
            }
            TraceIdError::NotHex => write!(f, "trace id must be 1-{TRACE_ID_MAX_LEN} hex chars"),
        }
    }
}

/// A span identifier, unique within one [`TraceCtx`]. `SpanId::NONE` (0)
/// marks a root span's parent.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no parent" sentinel used by root spans.
    pub const NONE: SpanId = SpanId(0);
}

/// Appends a `trace` field to every event passing through, leaving
/// counters and histograms untouched (metrics stay aggregate; provenance
/// is what gets scoped).
#[derive(Debug)]
struct ScopedRecorder {
    inner: Arc<dyn Recorder>,
    trace: String,
}

impl Recorder for ScopedRecorder {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn counter(&self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        self.inner.counter(name, labels, delta);
    }

    fn observe(&self, name: &'static str, labels: &[(&'static str, &str)], value: f64) {
        self.inner.observe(name, labels, value);
    }

    fn event(&self, kind: &'static str, fields: &[(&'static str, Value)]) {
        let mut scoped: Vec<(&'static str, Value)> = Vec::with_capacity(fields.len() + 1);
        scoped.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
        scoped.push(("trace", Value::string(&self.trace)));
        self.inner.event(kind, &scoped);
    }
}

/// One request's trace context: the id, a scoped [`Obs`] handle that tags
/// every event with it, and a span-id allocator. See the [module
/// docs](self).
#[derive(Debug)]
pub struct TraceCtx {
    id: TraceId,
    obs: Obs,
    epoch: Instant,
    next_span: AtomicU64,
}

impl TraceCtx {
    /// Scopes `base` to the given trace id. A no-op base stays no-op.
    pub fn new(base: &Obs, id: TraceId) -> TraceCtx {
        let obs = match base.recorder() {
            None => Obs::noop(),
            Some(inner) => Obs::new(Arc::new(ScopedRecorder {
                inner,
                trace: id.to_string(),
            })),
        };
        TraceCtx {
            id,
            obs,
            epoch: Instant::now(),
            next_span: AtomicU64::new(0),
        }
    }

    /// The trace id this context scopes to.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The scoped handle: pass this down instead of the base `Obs` so
    /// every event the callee emits carries the trace id.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Microseconds since the context was created (the span time base).
    pub fn elapsed_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Starts a root span (no parent).
    pub fn root(&self, name: &'static str) -> SpanGuard {
        self.span(name, SpanId::NONE)
    }

    /// Starts a span under `parent`. The guard emits one `span` event when
    /// dropped (or [`SpanGuard::finish`]ed); child spans reference it via
    /// [`SpanGuard::id`].
    pub fn span(&self, name: &'static str, parent: SpanId) -> SpanGuard {
        let id = SpanId(self.next_span.fetch_add(1, Ordering::Relaxed) + 1);
        SpanGuard {
            obs: self.obs.clone(),
            name,
            id,
            parent,
            start_us: self.elapsed_us(),
            started: Instant::now(),
            active: self.obs.enabled(),
        }
    }
}

/// A hierarchical timing guard from [`TraceCtx::span`]: emits a `span`
/// event with parent link and relative timing when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    obs: Obs,
    name: &'static str,
    id: SpanId,
    parent: SpanId,
    start_us: u64,
    started: Instant,
    active: bool,
}

impl SpanGuard {
    /// This span's id, for parenting child spans.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_us = self.started.elapsed().as_micros() as u64;
        self.obs.event(
            "span",
            &[
                ("name", Value::string(self.name)),
                ("span", Value::UInt(self.id.0)),
                ("parent", Value::UInt(self.parent.0)),
                ("start_us", Value::UInt(self.start_us)),
                ("dur_us", Value::UInt(dur_us)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{field, CaptureRecorder};

    #[test]
    fn trace_ids_round_trip_through_text() {
        let id = TraceId::from_u64(0xdead_beef);
        assert_eq!(id.to_string(), "00000000deadbeef");
        assert_eq!(TraceId::parse("00000000deadbeef"), Ok(id));
        assert_eq!(TraceId::parse("deadBEEF"), Ok(id));
        assert_eq!(TraceId::parse("0"), Ok(TraceId::from_u64(0)));
    }

    #[test]
    fn malformed_trace_ids_are_rejected() {
        assert_eq!(TraceId::parse(""), Err(TraceIdError::Empty));
        assert_eq!(
            TraceId::parse("00112233445566778"),
            Err(TraceIdError::TooLong(17))
        );
        assert_eq!(TraceId::parse("xyz"), Err(TraceIdError::NotHex));
        assert_eq!(TraceId::parse("12 4"), Err(TraceIdError::NotHex));
        assert_eq!(TraceId::parse("-1"), Err(TraceIdError::NotHex));
    }

    #[test]
    fn minted_ids_differ() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_ne!(a.as_u64(), 0);
    }

    #[test]
    fn scoped_events_carry_the_trace_field() {
        let cap = Arc::new(CaptureRecorder::new());
        let base = Obs::new(cap.clone());
        let ctx = TraceCtx::new(&base, TraceId::from_u64(7));
        ctx.obs().event("serve.query", &[("answers", field::u(3))]);
        let events = cap.events_of("serve.query");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].uint("answers"), Some(3));
        assert_eq!(events[0].text("trace"), Some("0000000000000007"));
    }

    #[test]
    fn spans_nest_with_parent_links_and_relative_times() {
        let cap = Arc::new(CaptureRecorder::new());
        let base = Obs::new(cap.clone());
        let ctx = TraceCtx::new(&base, TraceId::mint());
        {
            let root = ctx.root("request");
            assert_eq!(root.id(), SpanId(1));
            let child = ctx.span("eval", root.id());
            assert_eq!(child.id(), SpanId(2));
            std::thread::sleep(std::time::Duration::from_millis(2));
            child.finish();
            root.finish();
        }
        let spans = cap.events_of("span");
        assert_eq!(spans.len(), 2); // child drops first
        let child = &spans[0];
        let root = &spans[1];
        assert_eq!(child.text("name"), Some("eval"));
        assert_eq!(child.uint("parent"), Some(1));
        assert_eq!(root.text("name"), Some("request"));
        assert_eq!(root.uint("parent"), Some(0));
        assert!(root.uint("dur_us").unwrap() >= child.uint("dur_us").unwrap());
        assert!(child.uint("start_us").unwrap() >= root.uint("start_us").unwrap());
        assert!(child.text("trace").is_some());
        assert_eq!(child.text("trace"), root.text("trace"));
    }

    #[test]
    fn noop_base_yields_a_silent_context() {
        let ctx = TraceCtx::new(&Obs::noop(), TraceId::mint());
        assert!(!ctx.obs().enabled());
        let span = ctx.root("request");
        assert!(!span.active);
        span.finish();
    }

    #[test]
    fn metrics_pass_through_unscoped() {
        let cap = Arc::new(CaptureRecorder::new());
        let base = Obs::new(cap.clone());
        let ctx = TraceCtx::new(&base, TraceId::mint());
        ctx.obs().counter("hits", &[("shard", "0")], 2);
        assert_eq!(cap.counter_where("hits", &[]), 2);
    }
}
