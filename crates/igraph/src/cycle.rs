//! Simple-cycle enumeration over the condensed graph, with the paper's cycle
//! properties: weight, one-directional / multi-directional, rotational /
//! permutational, unit / non-unit.
//!
//! The condensed graph is a small directed multigraph (groups as vertices);
//! cycles may traverse edges in either orientation (the implicit reverse edge
//! of weight −1). Enumeration is exhaustive DFS with canonicalization — the
//! graphs here have at most a handful of edges (one per argument position of
//! the recursive predicate), so this is exact and fast.

use crate::condense::Condensed;
use recurs_datalog::Symbol;
use std::fmt;

/// One traversal step of a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Index into [`Condensed::edges`].
    pub edge: usize,
    /// True if the edge is traversed tail→head (weight +1), false if
    /// against the arrow (weight −1).
    pub forward: bool,
}

/// A simple cycle of the condensed graph, normalized so its weight is
/// non-negative (a cycle and its reversal are the same cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// The traversal, in order.
    pub steps: Vec<Step>,
    /// Signed weight of the (normalized) traversal: Σ ±1 over directed edges.
    pub weight: i64,
    /// True if every directed edge is traversed in the same orientation.
    pub one_directional: bool,
    /// For one-directional cycles: true if at least one junction passes
    /// through an undirected connection (entry and exit variables of a group
    /// differ). Meaningless for multi-directional cycles (always `false`).
    pub rotational: bool,
}

impl Cycle {
    /// Number of directed edges on the cycle.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the cycle has no steps (never produced by enumeration).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// |weight| — the paper's cycle weight is reported as a magnitude.
    pub fn magnitude(&self) -> u64 {
        self.weight.unsigned_abs()
    }

    /// A *unit* cycle: one-directional with weight 1.
    pub fn is_unit(&self) -> bool {
        self.one_directional && self.magnitude() == 1
    }

    /// A *permutational* cycle: one-directional with no undirected part.
    pub fn is_permutational(&self) -> bool {
        self.one_directional && !self.rotational
    }

    /// A *bounded* cycle: multi-directional with weight 0.
    pub fn is_bounded_cycle(&self) -> bool {
        !self.one_directional && self.weight == 0
    }

    /// An *unbounded* cycle: multi-directional with non-zero weight.
    pub fn is_unbounded_cycle(&self) -> bool {
        !self.one_directional && self.weight != 0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle(w={}, ", self.weight)?;
        if self.one_directional {
            write!(
                f,
                "one-directional {}",
                if self.rotational {
                    "rotational"
                } else {
                    "permutational"
                }
            )?;
        } else {
            write!(f, "multi-directional")?;
        }
        write!(f, ", {} edges)", self.steps.len())
    }
}

/// Enumerates all simple cycles of the condensed graph. Each cycle appears
/// exactly once (a traversal and its reversal are identified); cycles are
/// normalized so that `weight ≥ 0`, and a zero-weight cycle starts with a
/// forward step.
pub fn enumerate_cycles(c: &Condensed) -> Vec<Cycle> {
    let m = c.edges.len();
    assert!(
        m <= 63,
        "cycle enumeration supports at most 63 directed edges"
    );
    let n = c.group_count();
    let mut out = Vec::new();
    // Canonical form: the cycle's minimal edge id is the first step, taken
    // forward. (Reversed traversals take it backward, so exactly one of the
    // two traversals is produced.)
    for e0 in 0..m {
        let first = &c.edges[e0];
        if first.from == first.to {
            // Self-loop: a 1-edge cycle.
            out.push(finish(
                c,
                vec![Step {
                    edge: e0,
                    forward: true,
                }],
            ));
            continue;
        }
        let start = first.from;
        let mut visited = vec![false; n];
        visited[start] = true;
        visited[first.to] = true;
        let mut steps = vec![Step {
            edge: e0,
            forward: true,
        }];
        dfs(
            c,
            e0,
            start,
            first.to,
            &mut visited,
            1u64 << e0,
            &mut steps,
            &mut out,
        );
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    c: &Condensed,
    e0: usize,
    start: usize,
    at: usize,
    visited: &mut Vec<bool>,
    used: u64,
    steps: &mut Vec<Step>,
    out: &mut Vec<Cycle>,
) {
    for (eid, edge) in c.edges.iter().enumerate() {
        if eid <= e0 || used & (1 << eid) != 0 {
            continue;
        }
        let (next, forward) = if edge.from == at {
            (edge.to, true)
        } else if edge.to == at {
            (edge.from, false)
        } else {
            continue;
        };
        // Self-loops elsewhere can't be part of a longer simple cycle.
        if edge.from == edge.to {
            continue;
        }
        steps.push(Step { edge: eid, forward });
        if next == start {
            out.push(finish(c, steps.clone()));
        } else if !visited[next] {
            visited[next] = true;
            dfs(c, e0, start, next, visited, used | (1 << eid), steps, out);
            visited[next] = false;
        }
        steps.pop();
    }
}

/// Computes cycle properties and normalizes orientation.
fn finish(c: &Condensed, mut steps: Vec<Step>) -> Cycle {
    let weight: i64 = steps.iter().map(|s| if s.forward { 1 } else { -1 }).sum();
    let mut steps_norm = steps.clone();
    let mut weight_norm = weight;
    if weight < 0 {
        // Reverse the traversal: reverse order, flip orientations.
        steps_norm.reverse();
        for s in &mut steps_norm {
            s.forward = !s.forward;
        }
        weight_norm = -weight;
    }
    steps = steps_norm;
    let one_directional = steps.iter().all(|s| s.forward) || steps.iter().all(|s| !s.forward);
    // Rotational: some junction's arrival variable differs from the next
    // departure variable (the cycle passes through undirected edges).
    let k = steps.len();
    let mut rotational = false;
    if one_directional {
        for i in 0..k {
            let arrive = arrival_var(c, &steps[i]);
            let depart = departure_var(c, &steps[(i + 1) % k]);
            if arrive != depart {
                rotational = true;
                break;
            }
        }
    }
    Cycle {
        steps,
        weight: weight_norm,
        one_directional,
        rotational,
    }
}

/// The variable at which a step arrives in its target group.
fn arrival_var(c: &Condensed, s: &Step) -> Symbol {
    let e = &c.edges[s.edge];
    if s.forward {
        e.head
    } else {
        e.tail
    }
}

/// The variable from which a step departs its source group.
fn departure_var(c: &Condensed, s: &Step) -> Symbol {
    let e = &c.edges[s.edge];
    if s.forward {
        e.tail
    } else {
        e.head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::igraph_of;
    use crate::condense::condense;
    use recurs_datalog::parser::parse_rule;

    fn cycles(src: &str) -> Vec<Cycle> {
        enumerate_cycles(&condense(&igraph_of(&parse_rule(src).unwrap())))
    }

    #[test]
    fn s1a_two_unit_cycles() {
        let cs = cycles("P(x, y) :- A(x, z), P(z, y).");
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().all(Cycle::is_unit));
        // One rotational (x→z over A), one permutational (y self-loop).
        assert_eq!(cs.iter().filter(|c| c.rotational).count(), 1);
        assert_eq!(cs.iter().filter(|c| c.is_permutational()).count(), 1);
    }

    #[test]
    fn s3_three_disjoint_unit_cycles() {
        let cs = cycles("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).");
        assert_eq!(cs.len(), 3);
        assert!(cs.iter().all(Cycle::is_unit));
        assert!(cs.iter().all(|c| c.rotational));
    }

    #[test]
    fn s4a_weight_three_rotational() {
        let cs = cycles("P(x1,x2,x3) :- A(x1,y3), B(x2,y1), C(y2,x3), P(y1,y2,y3).");
        assert_eq!(cs.len(), 1);
        let c = &cs[0];
        assert_eq!(c.weight, 3);
        assert!(c.one_directional);
        assert!(c.rotational);
        assert!(!c.is_unit());
    }

    #[test]
    fn s5_weight_three_permutational() {
        let cs = cycles("P(x, y, z) :- P(y, z, x).");
        assert_eq!(cs.len(), 1);
        let c = &cs[0];
        assert_eq!(c.weight, 3);
        assert!(c.is_permutational());
    }

    #[test]
    fn s6_three_permutational_cycles() {
        // s6: P(x,y,z,u,v,w) :- P(z,y,u,x,w,v): weights 3, 1, 2.
        let cs = cycles("P(x,y,z,u,v,w) :- P(z,y,u,x,w,v).");
        assert_eq!(cs.len(), 3);
        let mut weights: Vec<u64> = cs.iter().map(Cycle::magnitude).collect();
        weights.sort();
        assert_eq!(weights, vec![1, 2, 3]);
        assert!(cs.iter().all(Cycle::is_permutational));
    }

    #[test]
    fn s7_four_disjoint_cycles() {
        // s7: weights 1, 2, 3, 1.
        let cs = cycles("P(x,y,z,u,w,s,v) :- A(x,t), P(t,z,y,w,s,r,v), B(u,r).");
        assert_eq!(cs.len(), 4);
        let mut weights: Vec<u64> = cs.iter().map(Cycle::magnitude).collect();
        weights.sort();
        assert_eq!(weights, vec![1, 1, 2, 3]);
        assert!(cs.iter().all(|c| c.one_directional));
    }

    #[test]
    fn s8_bounded_cycle() {
        let cs = cycles("P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).");
        assert_eq!(cs.len(), 1);
        let c = &cs[0];
        assert!(c.is_bounded_cycle());
        assert_eq!(c.weight, 0);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn s9_unbounded_cycle() {
        let cs = cycles("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).");
        assert_eq!(cs.len(), 1);
        let c = &cs[0];
        assert!(c.is_unbounded_cycle());
        assert_eq!(c.magnitude(), 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn s10_no_cycles() {
        let cs = cycles("P(x, y) :- B(y), C(x, y1), P(x1, y1).");
        assert!(cs.is_empty());
    }

    #[test]
    fn s11_two_dependent_unit_cycles() {
        let cs = cycles("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).");
        // Two self-loops on the single group.
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().all(Cycle::is_unit));
        assert!(cs.iter().all(|c| c.rotational));
    }

    #[test]
    fn uniform_length_two_cycle() {
        // Thm 1 counterexample: P(x,y) :- A(x,z), P(y,z): a one-directional
        // cycle of weight 2 through the two groups.
        let cs = cycles("P(x, y) :- A(x, z), P(y, z).");
        assert_eq!(cs.len(), 1);
        let c = &cs[0];
        assert_eq!(c.weight, 2);
        assert!(c.one_directional);
    }

    #[test]
    fn antiparallel_edges_make_weight_zero_cycle() {
        // P(x,y) :- A(x,u), B(y,v), C(u,y)? Construct directly:
        // P(x,y) :- A(x,y), P(y1,x1), B(x,x1), C(y,y1) gives edges x→y1, y→x1
        // with groups {x,y,x1,y1}... simpler: use a 2-D formula where the two
        // directed edges run in opposite directions between two groups:
        // P(x,y) :- A(x,v), B(y,u), P(u,v): x→u (pos 0), y→v (pos 1);
        // groups {x,v}, {y,u}: edges G1→G2 and G2→G1 — a weight-2 cycle? No:
        // forward+forward = one-directional weight 2.
        let cs = cycles("P(x, y) :- A(x, v), B(y, u), P(u, v).");
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].magnitude(), 2);
        assert!(cs[0].one_directional);
        // Parallel same-direction edges instead: P(x,y) :- A(x,y), B(u,v),
        // P(u,v): x→u, y→v between groups {x,y} and {u,v} — weight 0,
        // multi-directional (one forward, one backward).
        let cs2 = cycles("P(x, y) :- A(x, y), B(u, v), P(u, v).");
        assert_eq!(cs2.len(), 1);
        assert!(cs2[0].is_bounded_cycle());
    }

    #[test]
    fn normalization_gives_nonnegative_weight() {
        for src in [
            "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).",
            "P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).",
            "P(x1,x2,x3) :- A(x1,y3), B(x2,y1), C(y2,x3), P(y1,y2,y3).",
        ] {
            for c in cycles(src) {
                assert!(c.weight >= 0, "cycle weight {} not normalized", c.weight);
            }
        }
    }
}
