//! Condensation of the hybrid graph over undirected connectivity.
//!
//! The paper's Remark (section 3) observes that several undirected edges can
//! be *compressed* into one: for classification, only the undirected
//! **connectivity** between variables matters, not which non-recursive
//! predicates provide it. Condensation takes this to its fixpoint: vertices
//! of the condensed graph are the undirected-connected groups of variables,
//! and only the directed (recursive) edges remain, each remembering its
//! original tail and head variable.
//!
//! In the condensed graph:
//! * a *unit rotational* cycle is a self-loop whose tail and head variables
//!   differ (the undirected part of the cycle is inside the group);
//! * a *unit permutational* cycle is a self-loop on a single variable;
//! * trivial (all-undirected) cycles disappear, exactly as compression
//!   collapses them.

use crate::graph::{EdgeKind, IGraph, VertexId};
use recurs_datalog::Symbol;
use std::collections::BTreeMap;

/// A directed edge of the condensed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CEdge {
    /// Source group.
    pub from: usize,
    /// Target group.
    pub to: usize,
    /// The original tail variable (in group `from`).
    pub tail: Symbol,
    /// The original head variable (in group `to`).
    pub head: Symbol,
    /// Argument position of the recursive predicate.
    pub position: usize,
}

/// The condensed graph: undirected-connected groups plus directed edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Condensed {
    /// The groups; each is a sorted list of member variables.
    pub groups: Vec<Vec<Symbol>>,
    /// Variable → group index.
    pub group_of: BTreeMap<Symbol, usize>,
    /// The directed edges.
    pub edges: Vec<CEdge>,
}

impl Condensed {
    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The group a variable belongs to.
    ///
    /// # Panics
    /// Panics if the variable is not in the graph.
    pub fn group(&self, var: Symbol) -> usize {
        *self
            .group_of
            .get(&var)
            .unwrap_or_else(|| panic!("variable {var} not in condensed graph"))
    }

    /// Edges incident to a group (as tail or head).
    pub fn incident(&self, g: usize) -> impl Iterator<Item = (usize, &CEdge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.from == g || e.to == g)
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Condenses an I-graph (or resolution graph) over its undirected edges.
pub fn condense(g: &IGraph) -> Condensed {
    let n = g.vertex_count();
    let mut uf = UnionFind::new(n);
    for (_, e) in g.undirected_edges() {
        uf.union(e.a, e.b);
    }
    // Assign dense group ids in order of first appearance by vertex id, so
    // output is deterministic.
    let mut group_id: BTreeMap<usize, usize> = BTreeMap::new();
    let mut groups: Vec<Vec<Symbol>> = Vec::new();
    let mut of_vertex: Vec<usize> = Vec::with_capacity(n);
    for v in 0..n {
        let root = uf.find(v);
        let id = *group_id.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[id].push(g.var(v as VertexId));
        of_vertex.push(id);
    }
    for members in &mut groups {
        members.sort();
    }
    let group_of: BTreeMap<Symbol, usize> =
        g.vertices().map(|(v, sym)| (sym, of_vertex[v])).collect();
    let edges: Vec<CEdge> = g
        .edges()
        .filter(|(_, e)| e.kind == EdgeKind::Directed)
        .map(|(_, e)| CEdge {
            from: of_vertex[e.a],
            to: of_vertex[e.b],
            tail: g.var(e.a),
            head: g.var(e.b),
            position: e.position.expect("directed edges carry a position"),
        })
        .collect();
    Condensed {
        groups,
        group_of,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::igraph_of;
    use recurs_datalog::parser::parse_rule;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    fn condensed(src: &str) -> Condensed {
        condense(&igraph_of(&parse_rule(src).unwrap()))
    }

    #[test]
    fn s1a_groups() {
        let c = condensed("P(x, y) :- A(x, z), P(z, y).");
        // Groups: {x,z} and {y}.
        assert_eq!(c.group_count(), 2);
        assert_eq!(c.group(s("x")), c.group(s("z")));
        assert_ne!(c.group(s("x")), c.group(s("y")));
        assert_eq!(c.edges.len(), 2);
        // x→z is a self-loop on the {x,z} group with distinct endpoints.
        let e0 = c.edges.iter().find(|e| e.position == 0).unwrap();
        assert_eq!(e0.from, e0.to);
        assert_ne!(e0.tail, e0.head);
        // y→y is a self-loop on a single variable.
        let e1 = c.edges.iter().find(|e| e.position == 1).unwrap();
        assert_eq!(e1.from, e1.to);
        assert_eq!(e1.tail, e1.head);
    }

    #[test]
    fn compression_example_from_remark() {
        // P(x,y) :- A(x,u), B(x,z), C(z,u), P(u,y): the undirected triangle
        // x-u-z collapses into one group, leaving a rotational self-loop.
        let c = condensed("P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).");
        assert_eq!(c.group(s("x")), c.group(s("u")));
        assert_eq!(c.group(s("x")), c.group(s("z")));
        let e0 = c.edges.iter().find(|e| e.position == 0).unwrap();
        assert_eq!(e0.from, e0.to);
        assert_ne!(e0.tail, e0.head);
    }

    #[test]
    fn s11_single_group() {
        // s11: A(x,x1), B(y,y1), C(x1,y1) chain everything into one group.
        let c = condensed("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).");
        assert_eq!(c.group_count(), 1);
        assert_eq!(c.edges.len(), 2);
        assert!(c.edges.iter().all(|e| e.from == 0 && e.to == 0));
    }

    #[test]
    fn s9_three_groups() {
        // s9: P(x,y,z) :- A(x,y), B(u,v), P(u,z,v).
        let c = condensed("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).");
        assert_eq!(c.group_count(), 3);
        assert_eq!(c.group(s("x")), c.group(s("y")));
        assert_eq!(c.group(s("u")), c.group(s("v")));
        assert_ne!(c.group(s("z")), c.group(s("x")));
        assert_eq!(c.edges.len(), 3);
    }

    #[test]
    fn groups_are_sorted_and_deterministic() {
        let c = condensed("P(x, y) :- A(x, z), P(z, y).");
        for g in &c.groups {
            let mut sorted = g.clone();
            sorted.sort();
            assert_eq!(*g, sorted);
        }
    }

    #[test]
    fn incident_finds_touching_edges() {
        let c = condensed("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).");
        let gz = c.group(s("z"));
        // z is head of y→z and tail of z→v: two incident edges.
        assert_eq!(c.incident(gz).count(), 2);
    }
}
