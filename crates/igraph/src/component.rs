//! Weakly-connected components of the condensed graph and their structural
//! kind — the per-component basis of the paper's classification.

use crate::condense::Condensed;
use crate::cycle::{enumerate_cycles, Cycle};
use std::collections::BTreeSet;

/// The structural kind of one component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentKind {
    /// No directed edge at all — the component plays no role in recursion.
    Trivial,
    /// Directed edges but no non-trivial cycle (paper's class D component:
    /// Theorem 7 / Corollary 2 — bounded, never stable).
    NoNontrivialCycle,
    /// Exactly one non-trivial cycle containing every directed edge of the
    /// component (the paper's *independent* cycle).
    IndependentCycle(Cycle),
    /// More than one non-trivial cycle, or directed edges off the cycle —
    /// the paper's *dependent* cycles (class E component).
    Dependent,
}

/// One weakly-connected component of the condensed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Group ids (condensed vertices) in this component.
    pub groups: Vec<usize>,
    /// Edge ids (into [`Condensed::edges`]) in this component.
    pub edges: Vec<usize>,
    /// All simple cycles lying inside this component.
    pub cycles: Vec<Cycle>,
    /// Structural kind.
    pub kind: ComponentKind,
}

impl Component {
    /// True if the component contains at least one directed edge.
    pub fn is_nontrivial(&self) -> bool {
        !self.edges.is_empty()
    }
}

/// Splits the condensed graph into weakly-connected components and analyses
/// each (cycles + kind). Components are ordered by their smallest group id.
pub fn analyze_components(c: &Condensed) -> Vec<Component> {
    let n = c.group_count();
    // Union-find over groups, joined by directed edges.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for e in &c.edges {
        let (ra, rb) = (find(&mut parent, e.from), find(&mut parent, e.to));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let all_cycles = enumerate_cycles(c);
    // Bucket groups and edges per root.
    let mut roots: Vec<usize> = (0..n).map(|g| find(&mut parent, g)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&g| (roots[g], g));
    let mut components: Vec<Component> = Vec::new();
    let mut seen_roots: Vec<usize> = Vec::new();
    for (g, &root) in roots.iter().enumerate() {
        if !seen_roots.contains(&root) {
            seen_roots.push(root);
            components.push(Component {
                groups: Vec::new(),
                edges: Vec::new(),
                cycles: Vec::new(),
                kind: ComponentKind::Trivial,
            });
        }
        let idx = seen_roots.iter().position(|&r| r == root).expect("pushed");
        components[idx].groups.push(g);
    }
    for (eid, e) in c.edges.iter().enumerate() {
        let root = find(&mut parent, e.from);
        let idx = seen_roots
            .iter()
            .position(|&r| r == root)
            .expect("edge endpoints are groups");
        components[idx].edges.push(eid);
    }
    roots.clear();
    // Assign cycles to components (a cycle lives wholly inside one).
    for cycle in all_cycles {
        let first_edge = cycle.steps[0].edge;
        let root = find(&mut parent, c.edges[first_edge].from);
        let idx = seen_roots
            .iter()
            .position(|&r| r == root)
            .expect("cycle edges are component edges");
        components[idx].cycles.push(cycle);
    }
    // Classify.
    for comp in &mut components {
        comp.kind = classify_component(comp);
    }
    components
}

fn classify_component(comp: &Component) -> ComponentKind {
    if comp.edges.is_empty() {
        return ComponentKind::Trivial;
    }
    if comp.cycles.is_empty() {
        return ComponentKind::NoNontrivialCycle;
    }
    if comp.cycles.len() == 1 {
        let cycle = &comp.cycles[0];
        let cycle_edges: BTreeSet<usize> = cycle.steps.iter().map(|s| s.edge).collect();
        let comp_edges: BTreeSet<usize> = comp.edges.iter().copied().collect();
        if cycle_edges == comp_edges {
            return ComponentKind::IndependentCycle(cycle.clone());
        }
    }
    ComponentKind::Dependent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::igraph_of;
    use crate::condense::condense;
    use recurs_datalog::parser::parse_rule;

    fn components(src: &str) -> Vec<Component> {
        analyze_components(&condense(&igraph_of(&parse_rule(src).unwrap())))
    }

    fn nontrivial(src: &str) -> Vec<Component> {
        components(src)
            .into_iter()
            .filter(Component::is_nontrivial)
            .collect()
    }

    #[test]
    fn s1a_two_independent_unit_components() {
        let cs = nontrivial("P(x, y) :- A(x, z), P(z, y).");
        assert_eq!(cs.len(), 2);
        for comp in &cs {
            match &comp.kind {
                ComponentKind::IndependentCycle(cycle) => assert!(cycle.is_unit()),
                other => panic!("expected independent unit cycle, got {other:?}"),
            }
        }
    }

    #[test]
    fn s3_three_independent_components() {
        let cs = nontrivial("P(x,y,z) :- A(x,u), B(y,v), P(u,v,w), C(w,z).");
        assert_eq!(cs.len(), 3);
        assert!(cs
            .iter()
            .all(|c| matches!(&c.kind, ComponentKind::IndependentCycle(cy) if cy.is_unit())));
    }

    #[test]
    fn s8_single_bounded_component() {
        let cs = nontrivial("P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).");
        assert_eq!(cs.len(), 1);
        match &cs[0].kind {
            ComponentKind::IndependentCycle(cy) => assert!(cy.is_bounded_cycle()),
            other => panic!("expected independent bounded cycle, got {other:?}"),
        }
    }

    #[test]
    fn s9_single_unbounded_component() {
        let cs = nontrivial("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).");
        assert_eq!(cs.len(), 1);
        match &cs[0].kind {
            ComponentKind::IndependentCycle(cy) => assert!(cy.is_unbounded_cycle()),
            other => panic!("expected independent unbounded cycle, got {other:?}"),
        }
    }

    #[test]
    fn s10_acyclic_component() {
        let cs = nontrivial("P(x, y) :- B(y), C(x, y1), P(x1, y1).");
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].kind, ComponentKind::NoNontrivialCycle);
    }

    #[test]
    fn s11_dependent_component() {
        let cs = nontrivial("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).");
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].kind, ComponentKind::Dependent);
        assert_eq!(cs[0].cycles.len(), 2);
    }

    #[test]
    fn s12_mixed_components() {
        let cs = nontrivial("P(x,y,z) :- A(x,u), B(y,v), C(u,v), D(w,z), P(u,v,w).");
        assert_eq!(cs.len(), 2);
        let kinds: Vec<bool> = cs
            .iter()
            .map(|c| matches!(c.kind, ComponentKind::Dependent))
            .collect();
        // One dependent ({x,u,v,y} with two coupled unit cycles), one
        // independent unit rotational ({z,w}).
        assert_eq!(kinds.iter().filter(|&&d| d).count(), 1);
        assert!(cs.iter().any(
            |c| matches!(&c.kind, ComponentKind::IndependentCycle(cy) if cy.is_unit() && cy.rotational)
        ));
    }

    #[test]
    fn s7_four_independent_components() {
        let cs = nontrivial("P(x,y,z,u,w,s,v) :- A(x,t), P(t,z,y,w,s,r,v), B(u,r).");
        assert_eq!(cs.len(), 4);
        assert!(cs
            .iter()
            .all(|c| matches!(c.kind, ComponentKind::IndependentCycle(_))));
    }

    #[test]
    fn trivial_component_from_isolated_undirected_edge() {
        // D(a,b) where a,b are body-only variables not under P: they form a
        // trivial component. P(x) :- A(x,z), D(a,b), P(z).
        let cs = components("P(x) :- A(x, z), D(a, b), P(z).");
        assert!(cs.iter().any(|c| c.kind == ComponentKind::Trivial));
        assert_eq!(cs.iter().filter(|c| c.is_nontrivial()).count(), 1);
    }

    #[test]
    fn dependent_by_extra_directed_edge() {
        // A cycle plus a directed edge hanging off it: x→z unit cycle via A,
        // and z→w directed hanging (w fresh under P's 2nd position)...
        // P(x,z2) :- A(x,z), P(z,w), B(z2, w): directed x→z, z2→w; undirected
        // x-z (A), z2-w (B). Two separate independent cycles actually.
        // Build a genuine dependent case: share the group:
        // P(x,y) :- A(x,z), B(z,y1), P(z,y1): directed x→z, y→y1; undirected
        // x-z, z-y1 — all one group; y→y1 enters the cycle's group: dependent.
        let cs = nontrivial("P(x, y) :- A(x, z), B(z, y1), P(z, y1).");
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].kind, ComponentKind::Dependent);
    }
}
