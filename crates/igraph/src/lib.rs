//! `recurs-igraph` — the paper's graph model for linear recursive formulas.
//!
//! Implements section 2 of *Classification of Recursive Formulas in Deductive
//! Databases* (Youn, Henschen & Han, SIGMOD 1988):
//!
//! * the labeled, weighted, hybrid **I-graph** of a rule ([`graph`],
//!   [`build::igraph_of`]);
//! * **resolution graphs** `G_k` for the k-th expansion
//!   ([`build::resolution_graph`]);
//! * **condensation** over undirected connectivity — the paper's edge
//!   *compression* taken to its fixpoint ([`condense`]);
//! * exhaustive **simple-cycle enumeration** with the paper's cycle
//!   properties: weight, one-/multi-directional, rotational/permutational,
//!   unit ([`cycle`]);
//! * per-**component** structural analysis: trivial / acyclic / independent
//!   cycle / dependent ([`component`]);
//! * **max path weight** — Ioannidis's rank bound ([`paths`]);
//! * DOT and ASCII rendering of every figure ([`dot`]).
//!
//! # Example
//!
//! ```
//! use recurs_datalog::parser::parse_rule;
//! use recurs_igraph::build::igraph_of;
//! use recurs_igraph::condense::condense;
//! use recurs_igraph::cycle::enumerate_cycles;
//!
//! // s1a: transitive closure.
//! let rule = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
//! let g = igraph_of(&rule);
//! let cycles = enumerate_cycles(&condense(&g));
//! assert_eq!(cycles.len(), 2);
//! assert!(cycles.iter().all(|c| c.is_unit())); // strongly stable (Thm 1)
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod build;
pub mod component;
pub mod condense;
pub mod cycle;
pub mod dot;
pub mod graph;
pub mod paths;

pub use build::{igraph_of, resolution_graph, ResolutionGraph, ResolutionGraphs};
pub use component::{analyze_components, Component, ComponentKind};
pub use condense::{condense, CEdge, Condensed};
pub use cycle::{enumerate_cycles, Cycle, Step};
pub use graph::{Edge, EdgeId, EdgeKind, IGraph, VertexId};
pub use paths::max_path_weight;
