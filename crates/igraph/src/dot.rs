//! Rendering of I-graphs and resolution graphs: Graphviz DOT and a compact
//! ASCII form. These regenerate the paper's Figures 1–6 mechanically.

use crate::graph::{EdgeKind, IGraph};
use std::fmt::Write as _;

/// Renders the graph as Graphviz DOT. Directed edges are solid arrows
/// labeled with the recursive predicate and position; undirected edges are
/// dashed and labeled with their predicate.
pub fn to_dot(g: &IGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{name}\" {{");
    let _ = writeln!(out, "  // vertices are variables of the formula");
    for (_, var) in g.vertices() {
        let _ = writeln!(out, "  \"{var}\";");
    }
    for (_, e) in g.edges() {
        match e.kind {
            EdgeKind::Directed => {
                let _ = writeln!(
                    out,
                    "  \"{}\" -- \"{}\" [dir=forward, label=\"{} (w=1, pos {})\"];",
                    g.var(e.a),
                    g.var(e.b),
                    e.label,
                    e.position.unwrap_or(0),
                );
            }
            EdgeKind::Undirected => {
                let _ = writeln!(
                    out,
                    "  \"{}\" -- \"{}\" [style=dashed, label=\"{} (w=0)\"];",
                    g.var(e.a),
                    g.var(e.b),
                    e.label,
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the graph as sorted, line-per-edge ASCII. The output is stable
/// (sorted), so tests and golden files can compare it directly.
pub fn to_ascii(g: &IGraph) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (_, e) in g.edges() {
        let line = match e.kind {
            EdgeKind::Directed => format!(
                "{} ->{} {}   [{}]",
                g.var(e.a),
                e.position.map(|p| format!("({p})")).unwrap_or_default(),
                g.var(e.b),
                e.label,
            ),
            EdgeKind::Undirected => {
                // Canonical endpoint order for undirected edges.
                let (x, y) = if g.var(e.a) <= g.var(e.b) {
                    (g.var(e.a), g.var(e.b))
                } else {
                    (g.var(e.b), g.var(e.a))
                };
                format!("{x} --- {y}   [{}]", e.label)
            }
        };
        lines.push(line);
    }
    lines.sort();
    let mut out = String::new();
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::igraph_of;
    use recurs_datalog::parser::parse_rule;

    #[test]
    fn dot_contains_all_edges() {
        let g = igraph_of(&parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap());
        let dot = to_dot(&g, "s1a");
        assert!(dot.contains("graph \"s1a\""));
        assert!(dot.contains("dir=forward"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("\"x\" -- \"z\""));
    }

    #[test]
    fn ascii_is_sorted_and_stable() {
        let g = igraph_of(&parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap());
        let a1 = to_ascii(&g);
        let a2 = to_ascii(&g);
        assert_eq!(a1, a2);
        let lines: Vec<&str> = a1.lines().collect();
        assert_eq!(lines.len(), 3);
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn ascii_shows_direction_and_position() {
        let g = igraph_of(&parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap());
        let a = to_ascii(&g);
        assert!(a.contains("x ->(0) z"));
        assert!(a.contains("y ->(1) y"));
        assert!(a.contains("x --- z"));
    }
}
