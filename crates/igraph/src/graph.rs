//! The labeled, weighted, hybrid graph of the paper (section 2).
//!
//! Vertices are variables. Undirected edges (weight 0) connect variables
//! co-occurring in a non-recursive predicate and are labeled with that
//! predicate. Directed edges (weight +1, with an implicit reverse edge of
//! weight −1) connect the variable at position *i* of the consequent's
//! recursive atom to the variable at position *i* of the antecedent's,
//! and are labeled with the recursive predicate.

use recurs_datalog::Symbol;
use std::collections::BTreeMap;
use std::fmt;

/// Index of a vertex within an [`IGraph`].
pub type VertexId = usize;

/// Index of an edge within an [`IGraph`].
pub type EdgeId = usize;

/// Whether an edge is directed (recursive-predicate edge) or undirected
/// (non-recursive-predicate edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Weight-0 edge from a non-recursive predicate.
    Undirected,
    /// Weight-+1 edge `a → b` (implicit reverse edge has weight −1).
    Directed,
}

/// An edge of the hybrid graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Directed or undirected.
    pub kind: EdgeKind,
    /// Tail for directed edges; either endpoint for undirected ones.
    pub a: VertexId,
    /// Head for directed edges; the other endpoint for undirected ones.
    pub b: VertexId,
    /// The predicate that induced the edge.
    pub label: Symbol,
    /// For directed edges, the argument position of the recursive predicate
    /// that induced the edge. `None` for undirected edges.
    pub position: Option<usize>,
}

impl Edge {
    /// The weight contributed when traversing from `from` across this edge:
    /// +1 forward along a directed edge, −1 against it, 0 on undirected.
    pub fn weight_from(&self, from: VertexId) -> i64 {
        match self.kind {
            EdgeKind::Undirected => 0,
            EdgeKind::Directed => {
                if from == self.a {
                    1
                } else {
                    -1
                }
            }
        }
    }

    /// The endpoint opposite `v`. For self-loops returns `v` itself.
    pub fn other(&self, v: VertexId) -> VertexId {
        if v == self.a {
            self.b
        } else {
            self.a
        }
    }

    /// True if `v` is an endpoint.
    pub fn touches(&self, v: VertexId) -> bool {
        self.a == v || self.b == v
    }

    /// True if this is a self-loop (both endpoints the same vertex).
    pub fn is_self_loop(&self) -> bool {
        self.a == self.b
    }
}

/// The I-graph / resolution graph structure: a hybrid multigraph over
/// variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IGraph {
    vertices: Vec<Symbol>,
    index: BTreeMap<Symbol, VertexId>,
    edges: Vec<Edge>,
}

impl IGraph {
    /// An empty graph.
    pub fn new() -> IGraph {
        IGraph::default()
    }

    /// Adds (or finds) the vertex for a variable.
    pub fn add_vertex(&mut self, var: Symbol) -> VertexId {
        if let Some(&id) = self.index.get(&var) {
            return id;
        }
        let id = self.vertices.len();
        self.vertices.push(var);
        self.index.insert(var, id);
        id
    }

    /// Adds an undirected edge labeled with a non-recursive predicate.
    /// Parallel edges between the same endpoints are kept (the paper merges
    /// them only during *compression*).
    pub fn add_undirected(&mut self, u: Symbol, v: Symbol, label: Symbol) -> EdgeId {
        let a = self.add_vertex(u);
        let b = self.add_vertex(v);
        self.edges.push(Edge {
            kind: EdgeKind::Undirected,
            a,
            b,
            label,
            position: None,
        });
        self.edges.len() - 1
    }

    /// Adds a directed edge `from → to` for argument position `position` of
    /// the recursive predicate `label`.
    pub fn add_directed(
        &mut self,
        from: Symbol,
        to: Symbol,
        label: Symbol,
        position: usize,
    ) -> EdgeId {
        let a = self.add_vertex(from);
        let b = self.add_vertex(to);
        self.edges.push(Edge {
            kind: EdgeKind::Directed,
            a,
            b,
            label,
            position: Some(position),
        });
        self.edges.len() - 1
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges (directed + undirected).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The variable at a vertex.
    pub fn var(&self, v: VertexId) -> Symbol {
        self.vertices[v]
    }

    /// The vertex of a variable, if present.
    pub fn vertex_of(&self, var: Symbol) -> Option<VertexId> {
        self.index.get(&var).copied()
    }

    /// All vertices.
    pub fn vertices(&self) -> impl Iterator<Item = (VertexId, Symbol)> + '_ {
        self.vertices.iter().copied().enumerate()
    }

    /// All edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges.iter().enumerate()
    }

    /// The edge with a given id.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e]
    }

    /// Edges incident to `v` (self-loops reported once).
    pub fn incident(&self, v: VertexId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges().filter(move |(_, e)| e.touches(v))
    }

    /// Directed edges only.
    pub fn directed_edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges().filter(|(_, e)| e.kind == EdgeKind::Directed)
    }

    /// Undirected edges only.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges().filter(|(_, e)| e.kind == EdgeKind::Undirected)
    }
}

impl fmt::Display for IGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "vertices: {:?}", self.vertices)?;
        for (_, e) in self.edges() {
            match e.kind {
                EdgeKind::Directed => writeln!(
                    f,
                    "  {} -> {}  [{} pos {}]",
                    self.var(e.a),
                    self.var(e.b),
                    e.label,
                    e.position.unwrap_or(0),
                )?,
                EdgeKind::Undirected => {
                    writeln!(f, "  {} -- {}  [{}]", self.var(e.a), self.var(e.b), e.label,)?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn vertices_are_deduplicated() {
        let mut g = IGraph::new();
        let a = g.add_vertex(s("x"));
        let b = g.add_vertex(s("x"));
        assert_eq!(a, b);
        assert_eq!(g.vertex_count(), 1);
    }

    #[test]
    fn edges_record_kind_and_label() {
        let mut g = IGraph::new();
        g.add_undirected(s("x"), s("z"), s("A"));
        g.add_directed(s("x"), s("z"), s("P"), 0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.undirected_edges().count(), 1);
        assert_eq!(g.directed_edges().count(), 1);
        let (_, d) = g.directed_edges().next().unwrap();
        assert_eq!(d.position, Some(0));
        assert_eq!(g.var(d.a), s("x"));
        assert_eq!(g.var(d.b), s("z"));
    }

    #[test]
    fn weight_from_respects_direction() {
        let mut g = IGraph::new();
        let e = g.add_directed(s("x"), s("y"), s("P"), 0);
        let edge = g.edge(e);
        let x = g.vertex_of(s("x")).unwrap();
        let y = g.vertex_of(s("y")).unwrap();
        assert_eq!(edge.weight_from(x), 1);
        assert_eq!(edge.weight_from(y), -1);
        let u = g.add_undirected(s("x"), s("y"), s("A"));
        assert_eq!(g.edge(u).weight_from(x), 0);
    }

    #[test]
    fn self_loops_are_detected() {
        let mut g = IGraph::new();
        let e = g.add_directed(s("y"), s("y"), s("P"), 1);
        assert!(g.edge(e).is_self_loop());
        let y = g.vertex_of(s("y")).unwrap();
        assert_eq!(g.edge(e).other(y), y);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let mut g = IGraph::new();
        g.add_undirected(s("x"), s("u"), s("A"));
        g.add_undirected(s("x"), s("u"), s("B"));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn incident_lists_touching_edges() {
        let mut g = IGraph::new();
        g.add_undirected(s("x"), s("y"), s("A"));
        g.add_directed(s("y"), s("z"), s("P"), 0);
        let y = g.vertex_of(s("y")).unwrap();
        assert_eq!(g.incident(y).count(), 2);
        let x = g.vertex_of(s("x")).unwrap();
        assert_eq!(g.incident(x).count(), 1);
    }
}
