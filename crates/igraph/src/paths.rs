//! Path-weight analysis — Ioannidis's bound.
//!
//! Ioannidis's theorem (quoted in section 6 of the paper): a recursive
//! formula with no permutational patterns is bounded iff its I-graph has no
//! cycle of non-zero weight, and then a tight upper bound on its *rank* is
//! the maximum weight of any path in the I-graph.

use crate::graph::IGraph;

/// The maximum weight over all simple (vertex-distinct) paths of the hybrid
/// graph, traversing directed edges at +1 forward / −1 backward and
/// undirected edges at 0. The empty path gives 0, so the result is ≥ 0.
pub fn max_path_weight(g: &IGraph) -> i64 {
    let n = g.vertex_count();
    let mut best = 0i64;
    let mut visited = vec![false; n];
    for start in 0..n {
        visited[start] = true;
        dfs(g, start, 0, &mut visited, &mut best);
        visited[start] = false;
    }
    best
}

fn dfs(g: &IGraph, at: usize, weight: i64, visited: &mut Vec<bool>, best: &mut i64) {
    if weight > *best {
        *best = weight;
    }
    for (_, e) in g.incident(at) {
        if e.is_self_loop() {
            continue;
        }
        let next = e.other(at);
        if visited[next] {
            continue;
        }
        visited[next] = true;
        dfs(g, next, weight + e.weight_from(at), visited, best);
        visited[next] = false;
    }
}

/// The maximum weight over simple paths *starting anywhere and using forward
/// directed edges only* — a cheaper, commonly-quoted variant. Provided for
/// comparison in reports; [`max_path_weight`] is the bound the theorem uses.
pub fn max_forward_path_weight(g: &IGraph) -> i64 {
    let n = g.vertex_count();
    let mut best = 0i64;
    let mut visited = vec![false; n];
    for start in 0..n {
        visited[start] = true;
        dfs_forward(g, start, 0, &mut visited, &mut best);
        visited[start] = false;
    }
    best
}

fn dfs_forward(g: &IGraph, at: usize, weight: i64, visited: &mut Vec<bool>, best: &mut i64) {
    if weight > *best {
        *best = weight;
    }
    for (_, e) in g.incident(at) {
        if e.is_self_loop() {
            continue;
        }
        let w = e.weight_from(at);
        if w < 0 {
            continue; // only forward directed / undirected traversal
        }
        let next = e.other(at);
        if visited[next] {
            continue;
        }
        visited[next] = true;
        dfs_forward(g, next, weight + w, visited, best);
        visited[next] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::igraph_of;
    use recurs_datalog::parser::parse_rule;

    fn mpw(src: &str) -> i64 {
        max_path_weight(&igraph_of(&parse_rule(src).unwrap()))
    }

    #[test]
    fn s8_bound_is_two() {
        // Paper, Figure 3 / Example 8: upper bound 2.
        assert_eq!(
            mpw("P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1)."),
            2
        );
    }

    #[test]
    fn s10_bound_is_two() {
        // Paper, Example 10: upper bound 2 (path y→y1 then C then x→x1?
        // y →(1) y1 —C?No: C(x,y1): y1-x (0), x →(1) x1: total 2).
        assert_eq!(mpw("P(x, y) :- B(y), C(x, y1), P(x1, y1)."), 2);
    }

    #[test]
    fn unit_cycle_has_path_weight_one() {
        assert_eq!(mpw("P(x, y) :- A(x, z), P(z, y)."), 1);
    }

    #[test]
    fn empty_graph_weight_zero() {
        let g = IGraph::new();
        assert_eq!(max_path_weight(&g), 0);
    }

    #[test]
    fn forward_variant_never_exceeds_full() {
        for src in [
            "P(x,y,z,u) :- A(x,y), B(y1,u), C(z1,u1), P(z,y1,z1,u1).",
            "P(x, y) :- B(y), C(x, y1), P(x1, y1).",
            "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).",
        ] {
            let g = igraph_of(&parse_rule(src).unwrap());
            assert!(max_forward_path_weight(&g) <= max_path_weight(&g));
        }
    }

    #[test]
    fn chain_of_directed_edges_adds_up() {
        // P(x,y,z) :- A(x,y), P(y,z,w): directed x→y, y→z, z→w; path x→y→z→w
        // has weight 3... but wait, A(x,y) puts x,y in one group; still the
        // vertex-simple path x→y→z→w exists with weight 3.
        assert_eq!(mpw("P(x, y, z) :- A(x, y), P(y, z, w)."), 3);
    }
}
