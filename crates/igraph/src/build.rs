//! Construction of I-graphs and k-th resolution graphs from rules.

use crate::graph::IGraph;
use recurs_datalog::rule::Rule;
use recurs_datalog::term::Term;
use recurs_datalog::unfold::unfold_once_traced;
use recurs_datalog::Symbol;

/// Builds the I-graph of a linear recursive rule (section 2 of the paper):
///
/// * every variable is a vertex;
/// * each non-recursive body atom connects every pair of its (distinct)
///   variables with an undirected edge labeled by the predicate — binary
///   atoms give the paper's single edge, wider atoms give a clique;
/// * for each argument position `i`, a directed edge runs from the variable
///   at position `i` of the head to the variable at position `i` of the
///   recursive body atom.
///
/// # Panics
/// Panics if the rule is not linear recursive.
///
/// ```
/// use recurs_datalog::parser::parse_rule;
/// use recurs_igraph::build::igraph_of;
///
/// // Figure 1(a): s1a has three vertices, two arrows, one A-edge.
/// let g = igraph_of(&parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap());
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.directed_edges().count(), 2);
/// assert_eq!(g.undirected_edges().count(), 1);
/// ```
pub fn igraph_of(rule: &Rule) -> IGraph {
    let mut g = IGraph::new();
    add_rule_edges(&mut g, rule);
    g
}

/// Adds one rule's I-graph edges into an existing graph (used to append
/// I-graph copies when forming resolution graphs).
fn add_rule_edges(g: &mut IGraph, rule: &Rule) {
    let p = rule.head.predicate;
    assert!(
        rule.is_linear_recursive(),
        "I-graph construction requires a linear recursive rule, got {rule}"
    );
    // Vertices for every variable (also those in unary atoms with no edge).
    for v in rule.variables() {
        g.add_vertex(v);
    }
    // Undirected edges: cliques over each non-recursive atom's variables.
    for atom in rule.body.iter().filter(|a| a.predicate != p) {
        let vars: Vec<Symbol> = dedup_vars(atom.terms.iter().filter_map(Term::as_var));
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                g.add_undirected(vars[i], vars[j], atom.predicate);
            }
        }
    }
    // Directed edges: head position i → recursive-atom position i.
    let rec = rule
        .body_atoms_of(p)
        .next()
        .expect("linear recursion has a recursive body atom");
    for (i, (h, b)) in rule.head.terms.iter().zip(&rec.terms).enumerate() {
        let (Some(hv), Some(bv)) = (h.as_var(), b.as_var()) else {
            // The paper's fragment has no constants in the recursive
            // statement; validated rules never hit this arm.
            continue;
        };
        g.add_directed(hv, bv, p, i);
    }
}

fn dedup_vars(vars: impl Iterator<Item = Symbol>) -> Vec<Symbol> {
    let mut out = Vec::new();
    for v in vars {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// A resolution graph together with the expansion it belongs to.
#[derive(Debug, Clone)]
pub struct ResolutionGraph {
    /// The expansion index (1-based; 1 is the I-graph itself).
    pub k: usize,
    /// The k-th expansion of the formula.
    pub expansion: Rule,
    /// The k-th resolution graph: the I-graph of expansion 1 with the
    /// I-graphs of the spliced copies appended, arrows retained.
    pub graph: IGraph,
}

/// Iterator producing `G_1, G_2, …` — the successive resolution graphs.
pub struct ResolutionGraphs {
    original: Rule,
    predicate: Symbol,
    counter: u32,
    k: usize,
    current: Option<(Rule, IGraph)>,
}

impl ResolutionGraphs {
    /// Starts from a linear recursive rule.
    pub fn new(rule: &Rule) -> ResolutionGraphs {
        assert!(
            rule.is_linear_recursive(),
            "resolution graphs require a linear recursive rule"
        );
        ResolutionGraphs {
            original: rule.clone(),
            predicate: rule.head.predicate,
            counter: 0,
            k: 0,
            current: None,
        }
    }
}

impl Iterator for ResolutionGraphs {
    type Item = ResolutionGraph;

    fn next(&mut self) -> Option<ResolutionGraph> {
        self.k += 1;
        let (expansion, graph) = match self.current.take() {
            None => {
                let g = igraph_of(&self.original);
                (self.original.clone(), g)
            }
            Some((prev, mut g)) => {
                let step =
                    unfold_once_traced(&prev, &self.original, self.predicate, &mut self.counter);
                add_rule_edges(&mut g, &step.spliced);
                (step.result, g)
            }
        };
        self.current = Some((expansion.clone(), graph.clone()));
        Some(ResolutionGraph {
            k: self.k,
            expansion,
            graph,
        })
    }
}

/// The k-th resolution graph (k ≥ 1).
pub fn resolution_graph(rule: &Rule, k: usize) -> ResolutionGraph {
    assert!(k >= 1, "resolution graphs are 1-based");
    ResolutionGraphs::new(rule)
        .nth(k - 1)
        .expect("iterator is infinite")
}

#[cfg(test)]
mod tests {
    use super::*;

    use recurs_datalog::parser::parse_rule;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn figure_1a_s1a() {
        // s1a: P(x,y) :- A(x,z), P(z,y). Figure 1(a): x→z with A-edge, y self-loop.
        let r = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
        let g = igraph_of(&r);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.directed_edges().count(), 2);
        assert_eq!(g.undirected_edges().count(), 1);
        // x → z at position 0.
        let x = g.vertex_of(s("x")).unwrap();
        let z = g.vertex_of(s("z")).unwrap();
        let y = g.vertex_of(s("y")).unwrap();
        assert!(g
            .directed_edges()
            .any(|(_, e)| e.a == x && e.b == z && e.position == Some(0)));
        // y → y self-loop at position 1.
        assert!(g
            .directed_edges()
            .any(|(_, e)| e.a == y && e.b == y && e.position == Some(1)));
        // Undirected A edge between x and z.
        let (_, u) = g.undirected_edges().next().unwrap();
        assert_eq!(u.label, s("A"));
        assert!(u.touches(x) && u.touches(z));
    }

    #[test]
    fn figure_1b_s1b() {
        // s1b: P(x,y,z) :- A(x,y), P(u,z,v), B(u,v).
        let r = parse_rule("P(x, y, z) :- A(x, y), P(u, z, v), B(u, v).").unwrap();
        let g = igraph_of(&r);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.directed_edges().count(), 3);
        assert_eq!(g.undirected_edges().count(), 2);
        let (x, y, z) = (
            g.vertex_of(s("x")).unwrap(),
            g.vertex_of(s("y")).unwrap(),
            g.vertex_of(s("z")).unwrap(),
        );
        let (u, v) = (g.vertex_of(s("u")).unwrap(), g.vertex_of(s("v")).unwrap());
        // Directed: x→u, y→z, z→v.
        assert!(g.directed_edges().any(|(_, e)| e.a == x && e.b == u));
        assert!(g.directed_edges().any(|(_, e)| e.a == y && e.b == z));
        assert!(g.directed_edges().any(|(_, e)| e.a == z && e.b == v));
    }

    #[test]
    fn wide_atoms_become_cliques() {
        let r = parse_rule("P(x, y) :- T(x, y, w), P(x, w).").unwrap();
        let g = igraph_of(&r);
        // T(x,y,w) gives 3 undirected edges (triangle).
        assert_eq!(g.undirected_edges().count(), 3);
    }

    #[test]
    fn unary_atoms_add_vertices_but_no_edges() {
        // s10: P(x,y) :- B(y), C(x,y1), P(x1,y1).
        let r = parse_rule("P(x, y) :- B(y), C(x, y1), P(x1, y1).").unwrap();
        let g = igraph_of(&r);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.undirected_edges().count(), 1); // only C
        assert_eq!(g.directed_edges().count(), 2);
    }

    #[test]
    fn repeated_variable_in_nonrecursive_atom() {
        let r = parse_rule("P(x, y) :- A(x, x), B(x, z), P(z, y).").unwrap();
        let g = igraph_of(&r);
        // A(x,x) contributes no edge (no distinct pair); B contributes one.
        assert_eq!(g.undirected_edges().count(), 1);
    }

    #[test]
    fn resolution_graph_g1_is_igraph() {
        let r = parse_rule("P(x, y) :- A(x, z), P(z, u), B(u, y).").unwrap();
        let g1 = resolution_graph(&r, 1);
        assert_eq!(g1.k, 1);
        assert_eq!(g1.graph, igraph_of(&r));
        assert_eq!(g1.expansion, r);
    }

    #[test]
    fn figure_2c_second_resolution_graph_of_s2a() {
        // s2a: P(x,y) :- A(x,z), P(z,u), B(u,y).
        // G2 keeps the first copy's arrows and appends the second copy:
        // 6 vertices (x,y,z,u,z1,u1), 4 directed edges, 4 undirected edges.
        let r = parse_rule("P(x, y) :- A(x, z), P(z, u), B(u, y).").unwrap();
        let g2 = resolution_graph(&r, 2);
        assert_eq!(g2.k, 2);
        assert_eq!(g2.graph.vertex_count(), 6);
        assert_eq!(g2.graph.directed_edges().count(), 4);
        assert_eq!(g2.graph.undirected_edges().count(), 4);
        // The expansion is the paper's s2c shape (5 body atoms).
        assert_eq!(g2.expansion.body.len(), 5);
        // The retained arrows include the original x→z and z→(fresh z1):
        let x = g2.graph.vertex_of(s("x")).unwrap();
        let z = g2.graph.vertex_of(s("z")).unwrap();
        assert!(g2.graph.directed_edges().any(|(_, e)| e.a == x && e.b == z));
        assert!(g2
            .graph
            .directed_edges()
            .any(|(_, e)| e.a == z && g2.graph.var(e.b) != s("u")));
    }

    #[test]
    fn resolution_graphs_grow_monotonically() {
        let r = parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap();
        let gs: Vec<_> = ResolutionGraphs::new(&r).take(4).collect();
        for (i, rg) in gs.iter().enumerate() {
            let k = i + 1;
            assert_eq!(rg.k, k);
            // Each copy adds one A edge and two directed edges (one of which
            // is the y self-loop copy).
            assert_eq!(rg.graph.undirected_edges().count(), k);
            assert_eq!(rg.graph.directed_edges().count(), 2 * k);
        }
    }
}
