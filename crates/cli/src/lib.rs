//! Library backing the `recurs` command-line tool: argument parsing, file
//! loading, and the commands (`classify`, `plan`, `run`, `figure`, `serve`,
//! `batch`).
//!
//! The CLI reads a single source file holding a recursive formula, optional
//! facts, and optional queries:
//!
//! ```text
//! % transitive closure
//! P(x, y) :- A(x, z), P(z, y).
//! P(x, y) :- E(x, y).
//!
//! A(1, 2).  A(2, 3).  A(2, 4).
//! E(1, 2).  E(2, 3).  E(2, 4).
//!
//! ?- P(1, y).
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use recurs_core::oracle::compare;
use recurs_core::plan::plan_query;
use recurs_core::report::{classification_report, plan_report};
use recurs_core::Classification;
use recurs_datalog::adornment::QueryForm;
use recurs_datalog::eval::{answer_query, semi_naive, semi_naive_governed_with};
use recurs_datalog::fingerprint;
use recurs_datalog::govern::{CancelToken, EvalBudget, Outcome};
use recurs_datalog::parser::{parse, parse_atom};
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::term::Term;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::{Atom, Database};
use recurs_engine::{EngineConfig, EngineMode};
use recurs_igraph::build::resolution_graph;
use recurs_igraph::component::ComponentKind;
use recurs_igraph::dot::{to_ascii, to_dot};
use recurs_ivm::{explain_fact, render_tree, verify_tree, IvmError, WhyOutcome, DEFAULT_WHY_DEPTH};
use recurs_obs::aggregate::Aggregator;
use recurs_obs::trace::TraceWriter;
use recurs_obs::{field, Obs, Value};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Which evaluation engine `recurs run --engine` saturates the database
/// with, instead of the default class-driven query plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// The reference semi-naive evaluator (`recurs_datalog::eval`).
    Oracle,
    /// The indexed engine (`recurs-engine`, single-threaded).
    Indexed,
    /// The indexed engine with delta-sharded worker threads.
    Parallel,
}

impl EngineChoice {
    /// Parses `oracle`/`indexed`/`parallel`.
    pub fn parse(s: &str) -> Result<EngineChoice, String> {
        match s {
            "oracle" => Ok(EngineChoice::Oracle),
            "indexed" => Ok(EngineChoice::Indexed),
            "parallel" => Ok(EngineChoice::Parallel),
            other => Err(format!(
                "unknown engine `{other}` (expected oracle, indexed, or parallel)"
            )),
        }
    }

    /// The flag spelling, for output labels.
    pub fn label(self) -> &'static str {
        match self {
            EngineChoice::Oracle => "oracle",
            EngineChoice::Indexed => "indexed",
            EngineChoice::Parallel => "parallel",
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `recurs classify <file>`
    Classify {
        /// Source file path.
        file: String,
    },
    /// `recurs plan <file> [--form dvv]...`
    Plan {
        /// Source file path.
        file: String,
        /// Query-form patterns (`dvv`-style); defaults to the file's queries.
        forms: Vec<String>,
    },
    /// `recurs run <file> [--check] [--engine E] [--threads N]
    /// [--timeout-ms T] [--max-tuples N] [--max-iterations K] [--stats-json]`
    Run {
        /// Source file path.
        file: String,
        /// Also verify each answer set against the fixpoint oracle.
        check: bool,
        /// Saturate with this engine instead of executing query plans.
        engine: Option<EngineChoice>,
        /// Worker threads for `--engine parallel`.
        threads: usize,
        /// Wall-clock budget in milliseconds (requires `--engine`).
        timeout_ms: Option<u64>,
        /// Derived-tuple ceiling (requires `--engine`).
        max_tuples: Option<usize>,
        /// Iteration cap (requires `--engine`).
        max_iterations: Option<usize>,
        /// Also print the saturation statistics as one JSON line
        /// (requires `--engine`).
        stats_json: bool,
        /// Write a JSON-lines evaluation trace to this file
        /// (requires `--engine`).
        trace: Option<String>,
        /// Append the run's metrics in Prometheus text format
        /// (requires `--engine`).
        metrics: bool,
        /// Explain a ground fact's derivation instead of answering the
        /// file's queries (`--why "P(1, 3)"`).
        why: Option<String>,
        /// Recursion-depth bound for `--why` reconstruction.
        why_depth: u64,
    },
    /// `recurs figure <file> [--levels k] [--dot]`
    Figure {
        /// Source file path.
        file: String,
        /// How many resolution graphs `G_1 … G_k` to print.
        levels: usize,
        /// Also emit Graphviz DOT.
        dot: bool,
    },
    /// `recurs serve <file> (--stdin | --listen ADDR) [service options]
    /// [network options]`
    Serve {
        /// Source file path (formula + initial facts).
        file: String,
        /// Service sizing and per-query budget.
        opts: ServiceOpts,
        /// TCP front-end options; `None` serves the stdin line protocol.
        net: Option<NetOpts>,
    },
    /// `recurs batch <file> [--repeat N] [--stats-json] [service options]`
    Batch {
        /// Source file path (formula + facts + `?-` queries).
        file: String,
        /// How many times to ask each query (later rounds exercise the cache).
        repeat: usize,
        /// Append the service-wide statistics as one JSON line.
        stats_json: bool,
        /// Service sizing and per-query budget.
        opts: ServiceOpts,
    },
    /// `recurs help`
    Help,
}

/// Options shared by `serve` and `batch`: how the query service is sized and
/// what per-query budget it enforces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceOpts {
    /// Worker threads for saturating kernels; 1 runs the indexed engine.
    pub threads: usize,
    /// Disable the saturation cache.
    pub no_cache: bool,
    /// Saturation-cache capacity in entries.
    pub cache_capacity: usize,
    /// Maximum concurrent evaluations.
    pub max_concurrent: usize,
    /// Per-query wall-clock budget in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Per-query derived-tuple ceiling.
    pub max_tuples: Option<usize>,
    /// Per-query iteration cap.
    pub max_iterations: Option<usize>,
    /// Write the service's JSON-lines trace (spans, events) to this file.
    pub trace: Option<String>,
}

impl Default for ServiceOpts {
    fn default() -> ServiceOpts {
        ServiceOpts {
            threads: 1,
            no_cache: false,
            cache_capacity: 1024,
            max_concurrent: 4,
            timeout_ms: None,
            max_tuples: None,
            max_iterations: None,
            trace: None,
        }
    }
}

/// Options for `serve --listen`: how the TCP front end admits, times out,
/// and drains connections. Defaults mirror [`recurs_net::NetConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetOpts {
    /// Address to bind, e.g. `127.0.0.1:4004` (port 0 picks a free port).
    pub listen: String,
    /// Connection cap; further connections are shed.
    pub max_connections: usize,
    /// Idle/slow-client timeout in milliseconds.
    pub idle_timeout_ms: u64,
    /// Graceful-drain deadline in milliseconds; past it in-flight
    /// evaluations are hard-cancelled (exit code 2).
    pub drain_ms: u64,
    /// Bound on the evaluation-slot queue wait per request, milliseconds.
    pub max_queue_wait_ms: u64,
    /// Backoff hint rendered into shed replies, milliseconds.
    pub retry_after_ms: u64,
    /// Dump the flight recorder's retained events to this file when a
    /// worker panics or a drain is forced.
    pub postmortem: Option<String>,
}

impl NetOpts {
    /// Defaults for `--listen ADDR`.
    pub fn for_addr(addr: &str) -> NetOpts {
        NetOpts {
            listen: addr.to_string(),
            max_connections: 64,
            idle_timeout_ms: 30_000,
            drain_ms: 5_000,
            max_queue_wait_ms: 250,
            retry_after_ms: 50,
            postmortem: None,
        }
    }

    /// The [`recurs_net::NetConfig`] these options describe.
    pub fn config(&self) -> recurs_net::NetConfig {
        recurs_net::NetConfig {
            max_connections: self.max_connections,
            max_queue_wait: Duration::from_millis(self.max_queue_wait_ms),
            retry_after_ms: self.retry_after_ms,
            idle_timeout: Duration::from_millis(self.idle_timeout_ms),
            drain_deadline: Duration::from_millis(self.drain_ms),
            postmortem: self.postmortem.as_ref().map(std::path::PathBuf::from),
            ..recurs_net::NetConfig::default()
        }
    }
}

impl ServiceOpts {
    /// Consumes one service flag at `rest[i]`, returning the new index, or
    /// `None` if the flag is not a service option.
    fn consume(&mut self, rest: &[&String], i: usize) -> Result<Option<usize>, String> {
        let parse_num = |flag: &str| -> Result<usize, String> {
            let n = rest
                .get(i + 1)
                .ok_or_else(|| format!("{flag} needs a number"))?;
            n.parse()
                .map_err(|_| format!("invalid value `{n}` for {flag}"))
        };
        match rest[i].as_str() {
            "--threads" => {
                self.threads = parse_num("--threads")?;
                if self.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
                Ok(Some(i + 2))
            }
            "--no-cache" => {
                self.no_cache = true;
                Ok(Some(i + 1))
            }
            "--cache-capacity" => {
                self.cache_capacity = parse_num("--cache-capacity")?;
                Ok(Some(i + 2))
            }
            "--max-concurrent" => {
                self.max_concurrent = parse_num("--max-concurrent")?;
                if self.max_concurrent == 0 {
                    return Err("--max-concurrent must be at least 1".into());
                }
                Ok(Some(i + 2))
            }
            "--timeout-ms" => {
                self.timeout_ms = Some(parse_num("--timeout-ms")? as u64);
                Ok(Some(i + 2))
            }
            "--max-tuples" => {
                self.max_tuples = Some(parse_num("--max-tuples")?);
                Ok(Some(i + 2))
            }
            "--max-iterations" => {
                self.max_iterations = Some(parse_num("--max-iterations")?);
                Ok(Some(i + 2))
            }
            "--trace" => {
                let p = rest.get(i + 1).ok_or("--trace needs a file path")?;
                self.trace = Some((*p).clone());
                Ok(Some(i + 2))
            }
            _ => Ok(None),
        }
    }

    /// The per-query [`EvalBudget`] these options describe.
    pub fn budget(&self) -> EvalBudget {
        let mut budget = EvalBudget::iteration_cap(self.max_iterations);
        if let Some(ms) = self.timeout_ms {
            budget = budget.with_timeout(Duration::from_millis(ms));
        }
        if let Some(n) = self.max_tuples {
            budget = budget.with_max_tuples(n);
        }
        budget
    }
}

/// Usage text.
pub const USAGE: &str = "\
recurs — classification and compilation of recursive formulas (SIGMOD 1988)

USAGE:
    recurs classify <file>                 classify the formula, print the report
    recurs plan <file> [--form dvv]...     show the compiled plan per query form
    recurs run <file> [--check]            answer the file's ?- queries
                                           (--check: verify against the fixpoint)
                      [--engine oracle|indexed|parallel] [--threads N]
                                           saturate with the chosen engine
                                           instead of compiled query plans
                      [--timeout-ms T] [--max-tuples N] [--max-iterations K]
                                           budget the saturation (with --engine);
                                           a budgeted-out run prints the sound
                                           partial answers and exits with code 2
                      [--stats-json]       also print the saturation statistics
                                           as one JSON line (with --engine)
                      [--trace FILE]       write a JSON-lines evaluation trace
                                           (classification verdict, per-rule and
                                           per-iteration events) to FILE
                                           (with --engine)
                      [--metrics]          append the run's metrics in Prometheus
                                           text format (with --engine)
                      [--why \"P(1, 3)\"]    print a verified derivation tree for
                                           one ground fact of the recursive
                                           predicate (or that it is not
                                           derivable) instead of answering
                                           queries; the budget flags govern the
                                           provenance saturation
                      [--why-depth N]      bound the --why reconstruction depth

    recurs serve <file> --stdin            serve queries over stdin/stdout: one
                                           request per line (?- P(1, y). / +A(1, 2).
                                           / -A(1, 2). / +A(3, 4) -E(2, 3). /
                                           !explain P(1, y). / why P(1, 3). /
                                           !stats / !metrics / !snapshot /
                                           !quit; prefix @trace=<hex> to pick
                                           the request's trace id), one JSON
                                           reply per line
                                           (!metrics: Prometheus text ending
                                           with a # EOF line; a signed group is
                                           one atomic version; all-no-op groups
                                           reply unchanged without a bump);
                                           SIGTERM/Ctrl-C drains: the in-flight
                                           request is answered, then exit 0
                                           (2 if the drain deadline expires)
    recurs serve <file> --listen ADDR      serve the same protocol over TCP:
                                           length-framed requests and replies,
                                           pipelining with ordered replies,
                                           per-request deadlines (prefix a line
                                           with @deadline=MS), load shedding
                                           with a retry_after_ms hint, !health,
                                           and graceful drain on SIGTERM/Ctrl-C
                                           (exit 0 drained clean, 2 forced);
                                           prints `listening on ADDR` once
                                           bound (port 0 picks a free port)
        network options: [--max-connections N] [--idle-timeout-ms T]
                         [--drain-ms T] [--max-queue-wait-ms T]
                         [--retry-after-ms T]
                         [--postmortem FILE: dump the flight recorder's
                          retained events to FILE on a worker panic or a
                          forced drain, for `obsctl` postmortem reading]
    recurs batch <file> [--repeat N]       answer the file's ?- queries through
                                           the query service (repeat to exercise
                                           the cache) [--stats-json: append the
                                           service statistics as one JSON line]
        serve/batch options: [--threads N] [--no-cache] [--cache-capacity N]
                             [--max-concurrent N] [--timeout-ms T]
                             [--max-tuples N] [--max-iterations K]
                             [--trace FILE: write the service's JSON-lines
                              trace — request spans, events — to FILE, for
                              `obsctl validate|spans|slow`]

    recurs figure <file> [--levels K] [--dot]
                                           print I-graph / resolution graphs
    recurs help                            this text

EXIT CODES:
    0  complete   the run reached the fixpoint
    2  truncated  a budget or Ctrl-C stopped the run early (answers are a
                  sound under-approximation of the fixpoint)
    1  error      bad usage, unreadable file, invalid program, or engine error

FILE FORMAT:
    One linear recursive rule, optional exit rules, optional facts
    (ground atoms), optional queries (?- P(1, y).). Comments start with %.
";

/// Parses command-line arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    match cmd {
        "classify" => {
            let file = it.next().ok_or("classify needs a file argument")?;
            Ok(Command::Classify { file: file.clone() })
        }
        "plan" => {
            let file = it.next().ok_or("plan needs a file argument")?;
            let mut forms = Vec::new();
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--form" => {
                        let f = rest
                            .get(i + 1)
                            .ok_or("--form needs a pattern such as dvv")?;
                        forms.push((*f).clone());
                        i += 2;
                    }
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            Ok(Command::Plan {
                file: file.clone(),
                forms,
            })
        }
        "run" => {
            let file = it.next().ok_or("run needs a file argument")?;
            let mut check = false;
            let mut engine = None;
            let mut threads = 2usize;
            let mut timeout_ms = None;
            let mut max_tuples = None;
            let mut max_iterations = None;
            let mut stats_json = false;
            let mut trace = None;
            let mut metrics = false;
            let mut why = None;
            let mut why_depth = None;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--check" => {
                        check = true;
                        i += 1;
                    }
                    "--stats-json" => {
                        stats_json = true;
                        i += 1;
                    }
                    "--metrics" => {
                        metrics = true;
                        i += 1;
                    }
                    "--trace" => {
                        let p = rest.get(i + 1).ok_or("--trace needs a file path")?;
                        trace = Some((*p).clone());
                        i += 2;
                    }
                    "--why" => {
                        let f = rest
                            .get(i + 1)
                            .ok_or("--why needs a ground fact such as \"P(1, 3)\"")?;
                        why = Some((*f).clone());
                        i += 2;
                    }
                    "--why-depth" => {
                        let d = rest.get(i + 1).ok_or("--why-depth needs a number")?;
                        why_depth = Some(d.parse().map_err(|_| format!("invalid depth `{d}`"))?);
                        i += 2;
                    }
                    "--engine" => {
                        let e = rest
                            .get(i + 1)
                            .ok_or("--engine needs oracle, indexed, or parallel")?;
                        engine = Some(EngineChoice::parse(e)?);
                        i += 2;
                    }
                    "--threads" => {
                        let n = rest.get(i + 1).ok_or("--threads needs a number")?;
                        threads = n
                            .parse()
                            .map_err(|_| format!("invalid thread count `{n}`"))?;
                        if threads == 0 {
                            return Err("--threads must be at least 1".into());
                        }
                        i += 2;
                    }
                    "--timeout-ms" => {
                        let t = rest.get(i + 1).ok_or("--timeout-ms needs a number")?;
                        timeout_ms = Some(t.parse().map_err(|_| format!("invalid timeout `{t}`"))?);
                        i += 2;
                    }
                    "--max-tuples" => {
                        let n = rest.get(i + 1).ok_or("--max-tuples needs a number")?;
                        max_tuples =
                            Some(n.parse().map_err(|_| format!("invalid tuple cap `{n}`"))?);
                        i += 2;
                    }
                    "--max-iterations" => {
                        let k = rest.get(i + 1).ok_or("--max-iterations needs a number")?;
                        max_iterations = Some(
                            k.parse()
                                .map_err(|_| format!("invalid iteration cap `{k}`"))?,
                        );
                        i += 2;
                    }
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            if why.is_some() && (engine.is_some() || check) {
                return Err(
                    "--why explains one fact's derivation; it does not combine with \
                     --engine or --check"
                        .into(),
                );
            }
            if why_depth.is_some() && why.is_none() {
                return Err("--why-depth bounds a --why reconstruction; pass --why too".into());
            }
            if engine.is_none()
                && why.is_none()
                && (timeout_ms.is_some() || max_tuples.is_some() || max_iterations.is_some())
            {
                return Err(
                    "--timeout-ms/--max-tuples/--max-iterations budget a saturation run; \
                     pick one with --engine oracle|indexed|parallel (or pass --why)"
                        .into(),
                );
            }
            if stats_json && engine.is_none() {
                return Err("--stats-json reports saturation statistics; \
                     pick an engine with --engine oracle|indexed|parallel"
                    .into());
            }
            if (trace.is_some() || metrics) && engine.is_none() {
                return Err("--trace/--metrics observe a saturation run; \
                     pick an engine with --engine oracle|indexed|parallel"
                    .into());
            }
            Ok(Command::Run {
                file: file.clone(),
                check,
                engine,
                threads,
                timeout_ms,
                max_tuples,
                max_iterations,
                stats_json,
                trace,
                metrics,
                why,
                why_depth: why_depth.unwrap_or(DEFAULT_WHY_DEPTH),
            })
        }
        "serve" => {
            let file = it.next().ok_or("serve needs a file argument")?;
            let mut stdin = false;
            let mut listen: Option<String> = None;
            let mut opts = ServiceOpts::default();
            let mut max_connections = None;
            let mut idle_timeout_ms = None;
            let mut drain_ms = None;
            let mut max_queue_wait_ms = None;
            let mut retry_after_ms = None;
            let mut postmortem = None;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--stdin" => {
                        stdin = true;
                        i += 1;
                    }
                    "--listen" => {
                        let a = rest
                            .get(i + 1)
                            .ok_or("--listen needs an address such as 127.0.0.1:4004")?;
                        listen = Some((*a).clone());
                        i += 2;
                    }
                    "--postmortem" => {
                        let p = rest.get(i + 1).ok_or("--postmortem needs a file path")?;
                        postmortem = Some((*p).clone());
                        i += 2;
                    }
                    flag @ ("--max-connections"
                    | "--idle-timeout-ms"
                    | "--drain-ms"
                    | "--max-queue-wait-ms"
                    | "--retry-after-ms") => {
                        let n = rest
                            .get(i + 1)
                            .ok_or_else(|| format!("{flag} needs a number"))?;
                        let n: u64 = n
                            .parse()
                            .map_err(|_| format!("invalid value `{n}` for {flag}"))?;
                        match flag {
                            "--max-connections" => {
                                if n == 0 {
                                    return Err("--max-connections must be at least 1".into());
                                }
                                max_connections = Some(n as usize);
                            }
                            "--idle-timeout-ms" => idle_timeout_ms = Some(n),
                            "--drain-ms" => drain_ms = Some(n),
                            "--max-queue-wait-ms" => max_queue_wait_ms = Some(n),
                            _ => retry_after_ms = Some(n),
                        }
                        i += 2;
                    }
                    _ => {
                        if let Some(next) = opts.consume(&rest, i)? {
                            i = next;
                        } else {
                            return Err(format!("unknown option `{}`", rest[i]));
                        }
                    }
                }
            }
            let has_net_flags = max_connections.is_some()
                || idle_timeout_ms.is_some()
                || drain_ms.is_some()
                || max_queue_wait_ms.is_some()
                || retry_after_ms.is_some()
                || postmortem.is_some();
            let net = match (stdin, listen) {
                (true, Some(_)) => {
                    return Err("pass exactly one of --stdin and --listen".into());
                }
                (false, None) => {
                    return Err(
                        "serve needs a transport: --stdin (line protocol over stdin/stdout) \
                         or --listen ADDR (framed TCP)"
                            .into(),
                    );
                }
                (true, None) => {
                    if has_net_flags {
                        return Err("network options (--max-connections, --idle-timeout-ms, \
                             --drain-ms, --max-queue-wait-ms, --retry-after-ms, --postmortem) \
                             require --listen"
                            .into());
                    }
                    None
                }
                (false, Some(addr)) => {
                    let mut n = NetOpts::for_addr(&addr);
                    if let Some(v) = max_connections {
                        n.max_connections = v;
                    }
                    if let Some(v) = idle_timeout_ms {
                        n.idle_timeout_ms = v;
                    }
                    if let Some(v) = drain_ms {
                        n.drain_ms = v;
                    }
                    if let Some(v) = max_queue_wait_ms {
                        n.max_queue_wait_ms = v;
                    }
                    if let Some(v) = retry_after_ms {
                        n.retry_after_ms = v;
                    }
                    n.postmortem = postmortem;
                    Some(n)
                }
            };
            Ok(Command::Serve {
                file: file.clone(),
                opts,
                net,
            })
        }
        "batch" => {
            let file = it.next().ok_or("batch needs a file argument")?;
            let mut repeat = 1usize;
            let mut stats_json = false;
            let mut opts = ServiceOpts::default();
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                if rest[i] == "--repeat" {
                    let n = rest.get(i + 1).ok_or("--repeat needs a number")?;
                    repeat = n
                        .parse()
                        .map_err(|_| format!("invalid repeat count `{n}`"))?;
                    if repeat == 0 {
                        return Err("--repeat must be at least 1".into());
                    }
                    i += 2;
                } else if rest[i] == "--stats-json" {
                    stats_json = true;
                    i += 1;
                } else if let Some(next) = opts.consume(&rest, i)? {
                    i = next;
                } else {
                    return Err(format!("unknown option `{}`", rest[i]));
                }
            }
            Ok(Command::Batch {
                file: file.clone(),
                repeat,
                stats_json,
                opts,
            })
        }
        "figure" => {
            let file = it.next().ok_or("figure needs a file argument")?;
            let mut levels = 1usize;
            let mut dot = false;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--dot" => {
                        dot = true;
                        i += 1;
                    }
                    "--levels" => {
                        let k = rest.get(i + 1).ok_or("--levels needs a number")?;
                        levels = k
                            .parse()
                            .map_err(|_| format!("invalid level count `{k}`"))?;
                        if levels == 0 {
                            return Err("--levels must be at least 1".into());
                        }
                        i += 2;
                    }
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            Ok(Command::Figure {
                file: file.clone(),
                levels,
                dot,
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

/// A loaded source file: the validated formula, the fact database, and the
/// queries.
pub struct Loaded {
    /// The validated linear recursion.
    pub lr: LinearRecursion,
    /// Facts from the file.
    pub db: Database,
    /// Queries from the file.
    pub queries: Vec<Atom>,
}

/// Loads and validates a source text.
pub fn load(source: &str) -> Result<Loaded, String> {
    let parsed = parse(source).map_err(|e| format!("parse error: {e}"))?;
    let mut db = Database::new();
    let rules = db
        .load_facts(&parsed.program)
        .map_err(|e| format!("bad fact: {e}"))?;
    let lr = validate_with_generic_exit(&rules).map_err(|e| format!("invalid program: {e}"))?;
    // Make sure every EDB predicate at least exists (empty) so queries run.
    for pred in lr.to_program().edb_predicates() {
        if !db.contains(pred) {
            let arity = lr
                .to_program()
                .rules
                .iter()
                .flat_map(|r| r.body.iter())
                .find(|a| a.predicate == pred)
                .map(Atom::arity)
                .unwrap_or(0);
            let _ = db.declare(pred, arity);
        }
    }
    Ok(Loaded {
        lr,
        db,
        queries: parsed.queries,
    })
}

/// Builds a [`recurs_serve::QueryService`] from a source text and service
/// options, returning the file's `?-` queries alongside it.
pub fn build_service(
    source: &str,
    opts: &ServiceOpts,
) -> Result<(recurs_serve::QueryService, Vec<Atom>), String> {
    build_service_cancellable(source, opts, None)
}

/// Like [`build_service`], additionally wiring `cancel` into the per-query
/// budget so a signal truncates in-flight evaluations cooperatively.
pub fn build_service_cancellable(
    source: &str,
    opts: &ServiceOpts,
    cancel: Option<CancelToken>,
) -> Result<(recurs_serve::QueryService, Vec<Atom>), String> {
    let loaded = load(source)?;
    let mut budget = opts.budget();
    if let Some(token) = cancel {
        budget = budget.with_cancel(token);
    }
    // A `--trace FILE` sink; the writer flushes on drop when the service
    // (and its Obs handle) goes away.
    let mut sinks: Vec<Arc<dyn recurs_obs::Recorder>> = Vec::new();
    if let Some(path) = &opts.trace {
        let writer = TraceWriter::to_file(path)
            .map_err(|e| format!("cannot open trace file {path}: {e}"))?;
        sinks.push(Arc::new(writer));
    }
    let config = recurs_serve::ServeConfig {
        max_concurrent: opts.max_concurrent,
        cache_capacity: if opts.no_cache {
            0
        } else {
            opts.cache_capacity
        },
        budget,
        mode: if opts.threads > 1 {
            EngineMode::Parallel {
                threads: opts.threads,
            }
        } else {
            EngineMode::Indexed
        },
        obs: Obs::fanout(sinks),
        ..recurs_serve::ServeConfig::default()
    };
    Ok((
        recurs_serve::QueryService::new(loaded.lr, loaded.db, config),
        loaded.queries,
    ))
}

/// Runs the `serve --stdin` line protocol over arbitrary IO: one request per
/// input line, one JSON reply per output line. Returns on EOF or `!quit`.
pub fn serve_on_source(
    source: &str,
    opts: &ServiceOpts,
    input: impl std::io::BufRead,
    output: impl std::io::Write,
) -> Result<(), String> {
    let (service, _queries) = build_service(source, opts)?;
    recurs_serve::protocol::run_loop(&service, input, output).map_err(|e| format!("serve IO: {e}"))
}

/// Runs the `serve --stdin` line protocol like [`serve_on_source`], but
/// drains gracefully when `cancel` fires (SIGTERM/Ctrl-C in the binary): the
/// in-flight request's budget is cancelled so it truncates quickly and still
/// gets its one reply, no further lines are started, and the process exits 0
/// once idle — or 2 if `drain_deadline` expires with the request still
/// running. A monitor thread calls `process::exit`, because the signal
/// handler cannot interrupt a blocked stdin read (`signal(2)` installs with
/// SA_RESTART semantics). Returns normally on EOF or `!quit`.
pub fn serve_stdin_drained(
    source: &str,
    opts: &ServiceOpts,
    cancel: CancelToken,
    drain_deadline: Duration,
    input: impl std::io::BufRead,
    output: impl std::io::Write,
) -> Result<(), String> {
    serve_stdin_impl(
        source,
        opts,
        cancel,
        drain_deadline,
        input,
        output,
        |code| std::process::exit(code),
    )
}

/// [`serve_stdin_drained`] with the monitor's exit action injected, so tests
/// can observe the drain verdict instead of dying with the process.
fn serve_stdin_impl(
    source: &str,
    opts: &ServiceOpts,
    cancel: CancelToken,
    drain_deadline: Duration,
    input: impl std::io::BufRead,
    mut output: impl std::io::Write,
    exit: impl Fn(i32) + Send + 'static,
) -> Result<(), String> {
    use recurs_serve::protocol::{handle_line, LineOutcome};
    use std::sync::atomic::{AtomicBool, Ordering};

    let (service, _queries) = build_service_cancellable(source, opts, Some(cancel.clone()))?;
    let in_request = Arc::new(AtomicBool::new(false));
    {
        let cancel = cancel.clone();
        let in_request = Arc::clone(&in_request);
        std::thread::spawn(move || {
            while !cancel.is_cancelled() {
                std::thread::sleep(Duration::from_millis(20));
            }
            let deadline = std::time::Instant::now() + drain_deadline;
            loop {
                if !in_request.load(Ordering::SeqCst) {
                    exit(0);
                    return;
                }
                if std::time::Instant::now() >= deadline {
                    exit(2);
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
    }
    for line in input.lines() {
        let line = line.map_err(|e| format!("serve IO: {e}"))?;
        if cancel.is_cancelled() {
            // Drained at a line boundary; the monitor exits the process.
            return Ok(());
        }
        in_request.store(true, Ordering::SeqCst);
        let outcome = handle_line(&service, &line);
        let finished = (|| -> std::io::Result<bool> {
            match outcome {
                LineOutcome::Reply(reply) => {
                    writeln!(output, "{reply}")?;
                    output.flush()?;
                    Ok(false)
                }
                LineOutcome::Silent => Ok(false),
                LineOutcome::Quit => Ok(true),
            }
        })()
        .map_err(|e| format!("serve IO: {e}"))?;
        in_request.store(false, Ordering::SeqCst);
        if finished {
            break;
        }
    }
    Ok(())
}

/// Serves the framed TCP protocol on `net.listen` until `cancel` fires, then
/// drains gracefully: the listener stops accepting, in-flight requests are
/// answered within the drain deadline, and past it evaluations are
/// hard-cancelled (truncated replies, then close). Writes one
/// `listening on ADDR` line to `output` (flushed) once the socket is bound,
/// so scripts can discover an ephemeral port. The returned report's `forced`
/// flag maps to exit code 2 in the binary.
pub fn serve_listen_on_source(
    source: &str,
    opts: &ServiceOpts,
    net: &NetOpts,
    cancel: CancelToken,
    mut output: impl std::io::Write,
) -> Result<recurs_net::DrainReport, String> {
    let (service, _queries) = build_service(source, opts)?;
    let server = recurs_net::NetServer::bind(Arc::new(service), &net.listen, net.config())
        .map_err(|e| format!("cannot listen on {}: {e}", net.listen))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local address: {e}"))?;
    writeln!(output, "listening on {addr}").map_err(|e| format!("serve IO: {e}"))?;
    output.flush().map_err(|e| format!("serve IO: {e}"))?;
    let handle = server.handle();
    std::thread::spawn(move || {
        while !cancel.is_cancelled() {
            std::thread::sleep(Duration::from_millis(20));
        }
        handle.drain();
    });
    server.run().map_err(|e| format!("serve IO: {e}"))
}

/// Prints one query's answer set under a `[label]` header.
fn write_answers(out: &mut String, query: &Atom, label: &str, answers: &recurs_datalog::Relation) {
    let _ = writeln!(out, "?- {query}   [{label}]");
    if answers.arity() == 0 {
        let _ = writeln!(out, "{}", if answers.is_empty() { "no" } else { "yes" });
    } else {
        for t in answers.iter_sorted() {
            let row: Vec<&str> = t.iter().map(|v| v.as_str()).collect();
            let _ = writeln!(out, "  {}", row.join(", "));
        }
        let _ = writeln!(out, "  ({} answers)", answers.len());
    }
}

/// The printable output of a command plus how the run ended.
///
/// `outcome` is [`Outcome::Complete`] for every command except a budgeted
/// `run --engine …` that was stopped early; the binary maps it to the exit
/// code (0 complete, 2 truncated).
#[derive(Debug, Clone)]
pub struct CmdOutput {
    /// Text to print to stdout.
    pub text: String,
    /// How the evaluation ended.
    pub outcome: Outcome,
}

/// Runs a command against a source text, returning the printable output.
/// Convenience wrapper over [`execute`] that drops the outcome.
pub fn run_on_source(cmd: &Command, source: &str) -> Result<String, String> {
    execute(cmd, source, None).map(|o| o.text)
}

/// Runs a command against a source text. A `cancel` token, when given, is
/// wired into the evaluation budget of `run --engine …` so Ctrl-C stops the
/// saturation cooperatively (reported as a truncated outcome, not an error).
pub fn execute(
    cmd: &Command,
    source: &str,
    cancel: Option<CancelToken>,
) -> Result<CmdOutput, String> {
    let mut out = String::new();
    let mut outcome = Outcome::Complete;
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Classify { .. } => {
            let loaded = load(source)?;
            out.push_str(&classification_report(&loaded.lr));
        }
        Command::Plan { forms, .. } => {
            let loaded = load(source)?;
            let forms: Vec<QueryForm> = if forms.is_empty() {
                if loaded.queries.is_empty() {
                    // Default: single-d leading form.
                    let n = loaded.lr.dimension();
                    vec![QueryForm::parse(&format!("d{}", "v".repeat(n - 1)))]
                } else {
                    loaded.queries.iter().map(QueryForm::of_atom).collect()
                }
            } else {
                forms
                    .iter()
                    .map(|f| QueryForm::try_parse(f))
                    .collect::<Result<_, _>>()?
            };
            for form in forms {
                if form.arity() != loaded.lr.dimension() {
                    return Err(format!(
                        "form {form} has arity {}, formula has dimension {}",
                        form.arity(),
                        loaded.lr.dimension()
                    ));
                }
                out.push_str(&plan_report(&loaded.lr, &form));
                out.push('\n');
            }
        }
        Command::Run {
            check,
            engine,
            threads,
            timeout_ms,
            max_tuples,
            max_iterations,
            stats_json,
            trace,
            metrics,
            why,
            why_depth,
            ..
        } => {
            let loaded = load(source)?;
            if let Some(fact_text) = why {
                let mut budget = EvalBudget::iteration_cap(*max_iterations);
                if let Some(ms) = timeout_ms {
                    budget = budget.with_timeout(Duration::from_millis(*ms));
                }
                if let Some(n) = max_tuples {
                    budget = budget.with_max_tuples(*n);
                }
                if let Some(token) = cancel {
                    budget = budget.with_cancel(token);
                }
                outcome = explain_why(&mut out, &loaded, fact_text, *why_depth, &budget)?;
                return Ok(CmdOutput { text: out, outcome });
            }
            if loaded.queries.is_empty() {
                return Err("no ?- queries in the file".into());
            }
            if *check {
                // Say exactly which program/database version this check run
                // certifies, so reports stay comparable across edits.
                let _ = writeln!(
                    out,
                    "check: program={} db={}",
                    fingerprint::of_program(&loaded.lr.to_program()),
                    fingerprint::of_database(&loaded.db)
                );
            }
            match engine {
                None => {
                    for query in &loaded.queries {
                        let plan = plan_query(&loaded.lr, query);
                        let answers = plan
                            .execute(&loaded.db, query)
                            .map_err(|e| format!("execution failed: {e}"))?;
                        write_answers(&mut out, query, &format!("{:?}", plan.strategy), &answers);
                        if *check {
                            let report = compare(&loaded.lr, &loaded.db, query)
                                .map_err(|e| format!("oracle failed: {e}"))?;
                            let _ = writeln!(
                                out,
                                "  oracle: {}",
                                if report.agrees() {
                                    "agrees"
                                } else {
                                    "DISAGREES"
                                }
                            );
                            if !report.agrees() {
                                return Err(format!("plan disagrees with the fixpoint on {query}"));
                            }
                        }
                    }
                }
                Some(choice) => {
                    // Saturate once with the chosen engine under the
                    // requested budget, then answer every query against the
                    // (possibly partial) saturated database.
                    let mut budget = EvalBudget::iteration_cap(*max_iterations);
                    if let Some(ms) = timeout_ms {
                        budget = budget.with_timeout(Duration::from_millis(*ms));
                    }
                    if let Some(n) = max_tuples {
                        budget = budget.with_max_tuples(*n);
                    }
                    if let Some(token) = cancel {
                        budget = budget.with_cancel(token);
                    }
                    let (obs, trace_writer, metrics_agg) =
                        build_run_obs(trace.as_deref(), *metrics)?;
                    if obs.enabled() {
                        emit_classify_verdict(&obs, &loaded.lr, *choice);
                    }
                    let mut db = loaded.db.clone();
                    let (label, stats_line) = match choice {
                        EngineChoice::Oracle => {
                            let stats = semi_naive_governed_with(
                                &mut db,
                                &loaded.lr.to_program(),
                                &budget,
                                &obs,
                            )
                            .map_err(|e| format!("oracle engine failed: {e}"))?;
                            if let Some(reason) = stats.truncation {
                                outcome = Outcome::Truncated(reason);
                            }
                            (
                                format!("engine:oracle iterations={}", stats.iterations),
                                stats_json.then(|| serde::json::to_string(&stats)),
                            )
                        }
                        EngineChoice::Indexed | EngineChoice::Parallel => {
                            let config = EngineConfig {
                                mode: match choice {
                                    EngineChoice::Parallel => {
                                        EngineMode::Parallel { threads: *threads }
                                    }
                                    _ => EngineMode::Indexed,
                                },
                                budget,
                                obs: obs.clone(),
                            };
                            let sat = recurs_engine::run_linear(&mut db, &loaded.lr, &config)
                                .map_err(|e| format!("engine failed: {e}"))?;
                            outcome = sat.outcome;
                            (
                                format!(
                                    "engine:{} kernel:{} iterations={}",
                                    choice.label(),
                                    sat.stats.kernel.map_or_else(|| "?".into(), |k| k.label()),
                                    sat.stats.iteration_count()
                                ),
                                stats_json.then(|| serde::json::to_string(&sat)),
                            )
                        }
                    };
                    // The oracle fixpoint for --check (computed once).
                    let oracle_db = if *check {
                        let mut odb = loaded.db.clone();
                        semi_naive(&mut odb, &loaded.lr.to_program(), None)
                            .map_err(|e| format!("oracle failed: {e}"))?;
                        Some(odb)
                    } else {
                        None
                    };
                    for query in &loaded.queries {
                        let answers =
                            answer_query(&db, query).map_err(|e| format!("query failed: {e}"))?;
                        write_answers(&mut out, query, &label, &answers);
                        if let Some(odb) = &oracle_db {
                            let expected = answer_query(odb, query)
                                .map_err(|e| format!("oracle query failed: {e}"))?;
                            if outcome.is_complete() {
                                let agrees = answers == expected;
                                let _ = writeln!(
                                    out,
                                    "  oracle: {}",
                                    if agrees { "agrees" } else { "DISAGREES" }
                                );
                                if !agrees {
                                    return Err(format!(
                                        "engine disagrees with the fixpoint on {query}"
                                    ));
                                }
                            } else {
                                // A truncated run only promises a sound
                                // under-approximation: every answer must lie
                                // inside the fixpoint's answer set.
                                let sound = answers.iter().all(|t| expected.contains(t));
                                let _ = writeln!(
                                    out,
                                    "  oracle: {}",
                                    if sound {
                                        "subset of the fixpoint (truncated run)"
                                    } else {
                                        "DISAGREES"
                                    }
                                );
                                if !sound {
                                    return Err(format!(
                                        "truncated run over-approximates the fixpoint on {query}"
                                    ));
                                }
                            }
                        }
                    }
                    if let Some(reason) = outcome.truncation() {
                        let _ = writeln!(
                            out,
                            "truncated: {reason} (answers are a sound under-approximation)"
                        );
                    }
                    if let Some(json) = stats_line {
                        let _ = writeln!(out, "{json}");
                    }
                    if let Some(agg) = metrics_agg {
                        out.push_str(&agg.prometheus_text());
                    }
                    if let Some(writer) = trace_writer {
                        writer.flush();
                        if writer.had_error() {
                            return Err("trace write failed (trace file is incomplete)".into());
                        }
                    }
                }
            }
        }
        Command::Serve { .. } => {
            return Err(
                "serve streams requests from a transport; run it from the recurs binary \
                 with --stdin or --listen"
                    .into(),
            );
        }
        Command::Batch {
            repeat,
            stats_json,
            opts,
            ..
        } => {
            let (service, queries) = build_service(source, opts)?;
            if queries.is_empty() {
                return Err("no ?- queries in the file".into());
            }
            for _round in 0..*repeat {
                for query in &queries {
                    let reply = service
                        .query(query)
                        .map_err(|e| format!("query failed: {e}"))?;
                    let label = format!(
                        "serve kernel:{} cache:{} v{}",
                        reply.stats.kernel.label(),
                        reply.stats.cache.label(),
                        reply.stats.snapshot_version
                    );
                    write_answers(&mut out, query, &label, &reply.answers);
                    if let Some(reason) = reply.outcome.truncation() {
                        outcome = Outcome::Truncated(reason);
                        let _ = writeln!(out, "  truncated: {reason} (sound subset)");
                    }
                }
            }
            if *stats_json {
                out.push_str(&service.stats_json());
                out.push('\n');
            }
        }
        Command::Figure { levels, dot, .. } => {
            let loaded = load(source)?;
            for k in 1..=*levels {
                let rg = resolution_graph(&loaded.lr.recursive_rule, k);
                let _ = writeln!(out, "--- G{k} ---");
                out.push_str(&to_ascii(&rg.graph));
                if *dot {
                    out.push_str(&to_dot(&rg.graph, &format!("G{k}")));
                }
            }
        }
    }
    Ok(CmdOutput { text: out, outcome })
}

/// Builds the observability sinks a `run --engine` invocation asked for:
/// a JSON-lines [`TraceWriter`] for `--trace FILE` and a metric
/// [`Aggregator`] for `--metrics`. Both feed from the same handle, so the
/// trace and the Prometheus text describe the same run.
#[allow(clippy::type_complexity)]
fn build_run_obs(
    trace: Option<&str>,
    metrics: bool,
) -> Result<(Obs, Option<Arc<TraceWriter>>, Option<Arc<Aggregator>>), String> {
    let mut sinks: Vec<Arc<dyn recurs_obs::Recorder>> = Vec::new();
    let mut trace_writer = None;
    let mut metrics_agg = None;
    if let Some(path) = trace {
        let writer = Arc::new(
            TraceWriter::to_file(path)
                .map_err(|e| format!("cannot open trace file {path}: {e}"))?,
        );
        trace_writer = Some(writer.clone());
        sinks.push(writer as Arc<dyn recurs_obs::Recorder>);
    }
    if metrics {
        let agg = Arc::new(Aggregator::default());
        metrics_agg = Some(agg.clone());
        sinks.push(agg as Arc<dyn recurs_obs::Recorder>);
    }
    Ok((Obs::fanout(sinks), trace_writer, metrics_agg))
}

/// Runs `run --why`: reconstructs (and structurally verifies) a derivation
/// tree for one ground fact of the recursive predicate, or reports that the
/// fact is not derivable. A budget truncation maps to the truncated exit
/// code like any other governed run; a depth bound that is exceeded still
/// reports the fact's rank so the caller knows what `--why-depth` to pass.
fn explain_why(
    out: &mut String,
    loaded: &Loaded,
    fact_text: &str,
    depth_bound: u64,
    budget: &EvalBudget,
) -> Result<Outcome, String> {
    let (pred, tuple) = parse_ground_fact(fact_text)?;
    if pred != loaded.lr.predicate {
        return Err(format!(
            "--why explains {} facts; `{pred}` is not the recursive predicate",
            loaded.lr.predicate
        ));
    }
    let args: Vec<&str> = tuple.iter().map(|v| v.as_str()).collect();
    let fact = format!("{pred}({})", args.join(", "));
    match explain_fact(&loaded.lr, &loaded.db, &tuple, depth_bound, budget) {
        Ok(WhyOutcome::Derived(tree)) => {
            verify_tree(&loaded.lr, &loaded.db, &tree)
                .map_err(|d| format!("derivation tree failed structural verification: {d}"))?;
            let _ = writeln!(
                out,
                "{fact} is derived (depth {}, {} nodes):",
                tree.depth(),
                tree.size()
            );
            out.push_str(&render_tree(&tree));
            Ok(Outcome::Complete)
        }
        Ok(WhyOutcome::NotDerived) => {
            let _ = writeln!(out, "{fact} is not derivable from the file's facts");
            Ok(Outcome::Complete)
        }
        Ok(WhyOutcome::DepthExceeded { rank, max_depth }) => {
            let _ = writeln!(
                out,
                "{fact} is derived at rank {rank}, beyond --why-depth {max_depth}; \
                 raise the bound to see the tree"
            );
            Ok(Outcome::Complete)
        }
        Err(IvmError::Truncated(reason)) => {
            let _ = writeln!(
                out,
                "truncated: {reason} (the provenance saturation ran out of budget \
                 before reaching {fact})"
            );
            Ok(Outcome::Truncated(reason))
        }
        Err(e) => Err(format!("why failed: {e}")),
    }
}

/// Parses `P(1, 3)` (an optional trailing `.` is tolerated) into a
/// predicate and a ground tuple.
fn parse_ground_fact(
    text: &str,
) -> Result<
    (
        recurs_datalog::symbol::Symbol,
        recurs_datalog::relation::Tuple,
    ),
    String,
> {
    let text = text.trim();
    let text = text.strip_suffix('.').unwrap_or(text).trim();
    let atom = parse_atom(text).map_err(|e| format!("bad fact `{text}`: {e}"))?;
    let mut values = Vec::with_capacity(atom.terms.len());
    for t in &atom.terms {
        match t {
            Term::Const(c) => values.push(*c),
            Term::Var(v) => return Err(format!("fact {text} is not ground: variable {v}")),
        }
    }
    Ok((
        atom.predicate,
        recurs_datalog::relation::Tuple::from(values.as_slice()),
    ))
}

/// Emits the classification *explain* event: the formula's class verdict,
/// each non-trivial I-graph component with its cycle weight and direction,
/// the proven rank bound (when one exists), and the engine kernel the
/// verdict selects. This is the provenance record tying a trace back to
/// the paper's dispatch decision.
fn emit_classify_verdict(obs: &Obs, lr: &LinearRecursion, choice: EngineChoice) {
    let c = Classification::of(&lr.recursive_rule);
    let mut class_iter = c.component_classes.iter();
    let components: Vec<Value> = c
        .components
        .iter()
        .filter(|comp| comp.is_nontrivial())
        .map(|comp| {
            let label = class_iter.next().map_or("?", |cl| cl.label());
            let mut fields = vec![
                ("class", field::s(label)),
                ("cycles", field::uz(comp.cycles.len())),
            ];
            if let ComponentKind::IndependentCycle(cy) = &comp.kind {
                fields.push(("weight", field::u(cy.magnitude())));
                fields.push(("one_directional", field::b(cy.one_directional)));
                fields.push(("rotational", field::b(cy.rotational)));
            }
            Value::object(fields)
        })
        .collect();
    let kernel = match choice {
        EngineChoice::Oracle => "semi-naive".to_string(),
        _ => recurs_engine::select_kernel(&c).label(),
    };
    let mut fields = vec![
        ("class", field::s(c.class.label())),
        ("components", Value::Array(components)),
        ("kernel", field::s(kernel)),
        ("engine", field::s(choice.label())),
    ];
    if let Some(rank) = c.rank_bound() {
        fields.push(("rank_bound", field::u(rank)));
    }
    obs.event("classify.verdict", &fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    const TC: &str = "\
P(x, y) :- A(x, z), P(z, y).
P(x, y) :- E(x, y).
A(1, 2). A(2, 3). A(2, 4).
E(1, 2). E(2, 3). E(2, 4).
?- P(1, y).
?- P(1, 4).
?- P(4, 1).
";

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_args_variants() {
        assert_eq!(
            parse_args(&args(&["classify", "f.dl"])).unwrap(),
            Command::Classify {
                file: "f.dl".into()
            }
        );
        assert_eq!(
            parse_args(&args(&["plan", "f.dl", "--form", "dv"])).unwrap(),
            Command::Plan {
                file: "f.dl".into(),
                forms: vec!["dv".into()]
            }
        );
        assert_eq!(
            parse_args(&args(&["run", "f.dl", "--check"])).unwrap(),
            Command::Run {
                file: "f.dl".into(),
                check: true,
                engine: None,
                threads: 2,
                timeout_ms: None,
                max_tuples: None,
                max_iterations: None,
                stats_json: false,
                trace: None,
                metrics: false,
                why: None,
                why_depth: DEFAULT_WHY_DEPTH,
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "run",
                "f.dl",
                "--engine",
                "parallel",
                "--threads",
                "4"
            ]))
            .unwrap(),
            Command::Run {
                file: "f.dl".into(),
                check: false,
                engine: Some(EngineChoice::Parallel),
                threads: 4,
                timeout_ms: None,
                max_tuples: None,
                max_iterations: None,
                stats_json: false,
                trace: None,
                metrics: false,
                why: None,
                why_depth: DEFAULT_WHY_DEPTH,
            }
        );
        assert!(parse_args(&args(&["run", "f.dl", "--engine", "warp"])).is_err());
        assert!(parse_args(&args(&["run", "f.dl", "--threads", "0"])).is_err());
        assert_eq!(
            parse_args(&args(&["figure", "f.dl", "--levels", "3", "--dot"])).unwrap(),
            Command::Figure {
                file: "f.dl".into(),
                levels: 3,
                dot: true
            }
        );
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert!(parse_args(&args(&["bogus"])).is_err());
        assert!(parse_args(&args(&["plan", "f.dl", "--form"])).is_err());
        assert!(parse_args(&args(&["figure", "f.dl", "--levels", "0"])).is_err());
    }

    #[test]
    fn parse_args_budget_flags() {
        assert_eq!(
            parse_args(&args(&[
                "run",
                "f.dl",
                "--engine",
                "indexed",
                "--timeout-ms",
                "250",
                "--max-tuples",
                "100",
                "--max-iterations",
                "7"
            ]))
            .unwrap(),
            Command::Run {
                file: "f.dl".into(),
                check: false,
                engine: Some(EngineChoice::Indexed),
                threads: 2,
                timeout_ms: Some(250),
                max_tuples: Some(100),
                max_iterations: Some(7),
                stats_json: false,
                trace: None,
                metrics: false,
                why: None,
                why_depth: DEFAULT_WHY_DEPTH,
            }
        );
        // Budget flags without an engine are a usage error.
        let err = parse_args(&args(&["run", "f.dl", "--max-tuples", "5"])).unwrap_err();
        assert!(err.contains("--engine"), "{err}");
        assert!(parse_args(&args(&["run", "f.dl", "--timeout-ms", "abc"])).is_err());
        assert!(parse_args(&args(&["run", "f.dl", "--max-tuples"])).is_err());
    }

    #[test]
    fn parse_args_why_flags() {
        assert_eq!(
            parse_args(&args(&["run", "f.dl", "--why", "P(1, 3)"])).unwrap(),
            Command::Run {
                file: "f.dl".into(),
                check: false,
                engine: None,
                threads: 2,
                timeout_ms: None,
                max_tuples: None,
                max_iterations: None,
                stats_json: false,
                trace: None,
                metrics: false,
                why: Some("P(1, 3)".into()),
                why_depth: DEFAULT_WHY_DEPTH,
            }
        );
        // A depth bound and budget flags compose with --why (they govern the
        // provenance saturation), without requiring an engine.
        let cmd = parse_args(&args(&[
            "run",
            "f.dl",
            "--why",
            "P(1, 3)",
            "--why-depth",
            "7",
            "--max-tuples",
            "100",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                why,
                why_depth,
                max_tuples,
                ..
            } => {
                assert_eq!(why.as_deref(), Some("P(1, 3)"));
                assert_eq!(why_depth, 7);
                assert_eq!(max_tuples, Some(100));
            }
            other => panic!("expected run, got {other:?}"),
        }
        // --why excludes --engine/--check; --why-depth needs --why.
        let err = parse_args(&args(&[
            "run", "f.dl", "--why", "P(1)", "--engine", "indexed",
        ]))
        .unwrap_err();
        assert!(err.contains("--why"), "{err}");
        let err = parse_args(&args(&["run", "f.dl", "--why", "P(1)", "--check"])).unwrap_err();
        assert!(err.contains("--why"), "{err}");
        let err = parse_args(&args(&["run", "f.dl", "--why-depth", "3"])).unwrap_err();
        assert!(err.contains("--why"), "{err}");
        assert!(parse_args(&args(&["run", "f.dl", "--why"])).is_err());
        assert!(parse_args(&args(&["run", "f.dl", "--why", "P(1)", "--why-depth", "x"])).is_err());
    }

    fn why_run(fact: &str, why_depth: u64, max_tuples: Option<usize>) -> Command {
        Command::Run {
            file: String::new(),
            check: false,
            engine: None,
            threads: 2,
            timeout_ms: None,
            max_tuples,
            max_iterations: None,
            stats_json: false,
            trace: None,
            metrics: false,
            why: Some(fact.into()),
            why_depth,
        }
    }

    #[test]
    fn run_why_renders_a_verified_derivation_tree() {
        let out = execute(&why_run("P(1, 4)", DEFAULT_WHY_DEPTH, None), TC, None).unwrap();
        assert!(out.outcome.is_complete());
        assert!(out.text.contains("P(1, 4) is derived"), "{}", out.text);
        // The tree grounds out in EDB leaves and tags the rules used.
        assert!(out.text.contains("[recursive rule]"), "{}", out.text);
        assert!(out.text.contains("[edb]"), "{}", out.text);
        assert!(out.text.contains("E(2, 4)"), "{}", out.text);

        let out = execute(&why_run("P(4, 1)", DEFAULT_WHY_DEPTH, None), TC, None).unwrap();
        assert!(out.outcome.is_complete());
        assert!(
            out.text.contains("P(4, 1) is not derivable"),
            "{}",
            out.text
        );
    }

    #[test]
    fn run_why_reports_rank_when_the_depth_bound_is_exceeded() {
        // P(1, 4) needs one recursive step; a zero depth bound names the
        // rank instead of rendering a tree.
        let out = execute(&why_run("P(1, 4)", 0, None), TC, None).unwrap();
        assert!(out.outcome.is_complete());
        assert!(out.text.contains("beyond --why-depth 0"), "{}", out.text);
        assert!(out.text.contains("rank 1"), "{}", out.text);
    }

    #[test]
    fn run_why_maps_a_budget_truncation_to_the_truncated_outcome() {
        let out = execute(&why_run("P(1, 4)", DEFAULT_WHY_DEPTH, Some(1)), TC, None).unwrap();
        assert!(!out.outcome.is_complete(), "{}", out.text);
        assert!(out.text.contains("truncated"), "{}", out.text);
    }

    #[test]
    fn run_why_rejects_non_ground_and_foreign_facts() {
        let err = execute(&why_run("P(x, y)", DEFAULT_WHY_DEPTH, None), TC, None).unwrap_err();
        assert!(err.contains("not ground"), "{err}");
        let err = execute(&why_run("Q(1, 2)", DEFAULT_WHY_DEPTH, None), TC, None).unwrap_err();
        assert!(err.contains("recursive predicate"), "{err}");
        let err = execute(&why_run("P(1", DEFAULT_WHY_DEPTH, None), TC, None).unwrap_err();
        assert!(err.contains("bad fact"), "{err}");
    }

    fn budgeted_run(
        engine: EngineChoice,
        max_tuples: Option<usize>,
        max_iterations: Option<usize>,
    ) -> Command {
        Command::Run {
            file: String::new(),
            check: true,
            engine: Some(engine),
            threads: 2,
            timeout_ms: None,
            max_tuples,
            max_iterations,
            stats_json: false,
            trace: None,
            metrics: false,
            why: None,
            why_depth: DEFAULT_WHY_DEPTH,
        }
    }

    #[test]
    fn budgeted_run_reports_truncation_and_a_sound_subset() {
        for engine in [
            EngineChoice::Oracle,
            EngineChoice::Indexed,
            EngineChoice::Parallel,
        ] {
            let out = execute(&budgeted_run(engine, Some(1), None), TC, None).unwrap();
            assert!(
                !out.outcome.is_complete(),
                "{}: tuple ceiling 1 must truncate",
                engine.label()
            );
            assert!(
                out.text.contains("truncated: tuple ceiling"),
                "{}",
                out.text
            );
            assert!(!out.text.contains("DISAGREES"), "{}", out.text);
        }
    }

    #[test]
    fn unbudgeted_run_outcome_is_complete() {
        let out = execute(&budgeted_run(EngineChoice::Indexed, None, None), TC, None).unwrap();
        assert!(out.outcome.is_complete());
        assert!(out.text.contains("oracle: agrees"), "{}", out.text);
        assert!(!out.text.contains("truncated"), "{}", out.text);
    }

    #[test]
    fn pre_cancelled_token_truncates_immediately() {
        let token = CancelToken::new();
        token.cancel();
        let out = execute(
            &budgeted_run(EngineChoice::Indexed, None, None),
            TC,
            Some(token),
        )
        .unwrap();
        assert!(!out.outcome.is_complete());
        assert!(out.text.contains("truncated: cancelled"), "{}", out.text);
    }

    #[test]
    fn plan_rejects_malformed_query_form() {
        let err = run_on_source(
            &Command::Plan {
                file: String::new(),
                forms: vec!["dxz".into()],
            },
            TC,
        )
        .unwrap_err();
        assert!(err.contains("invalid query-form character"), "{err}");
    }

    #[test]
    fn classify_command_output() {
        let out = run_on_source(
            &Command::Classify {
                file: String::new(),
            },
            TC,
        )
        .unwrap();
        assert!(out.contains("class    : A5"));
        assert!(out.contains("strongly stable       : true"));
    }

    #[test]
    fn run_command_answers_queries() {
        let out = run_on_source(
            &Command::Run {
                file: String::new(),
                check: true,
                engine: None,
                threads: 2,
                timeout_ms: None,
                max_tuples: None,
                max_iterations: None,
                stats_json: false,
                trace: None,
                metrics: false,
                why: None,
                why_depth: DEFAULT_WHY_DEPTH,
            },
            TC,
        )
        .unwrap();
        // P(1, y): 2, 3, 4.
        assert!(out.contains("(3 answers)"), "{out}");
        // P(1, 4): yes; P(4, 1): no.
        assert!(out.contains("yes"), "{out}");
        assert!(out.contains("no"), "{out}");
        assert!(out.contains("oracle: agrees"), "{out}");
    }

    #[test]
    fn run_command_engine_modes_agree_with_plans() {
        let plan_out = run_on_source(
            &Command::Run {
                file: String::new(),
                check: false,
                engine: None,
                threads: 2,
                timeout_ms: None,
                max_tuples: None,
                max_iterations: None,
                stats_json: false,
                trace: None,
                metrics: false,
                why: None,
                why_depth: DEFAULT_WHY_DEPTH,
            },
            TC,
        )
        .unwrap();
        for choice in [
            EngineChoice::Oracle,
            EngineChoice::Indexed,
            EngineChoice::Parallel,
        ] {
            let out = run_on_source(
                &Command::Run {
                    file: String::new(),
                    check: true,
                    engine: Some(choice),
                    threads: 3,
                    timeout_ms: None,
                    max_tuples: None,
                    max_iterations: None,
                    stats_json: false,
                    trace: None,
                    metrics: false,
                    why: None,
                    why_depth: DEFAULT_WHY_DEPTH,
                },
                TC,
            )
            .unwrap();
            assert!(out.contains(&format!("engine:{}", choice.label())), "{out}");
            assert!(out.contains("oracle: agrees"), "{out}");
            // Same answer lines as the plan-driven run (headers differ).
            for line in plan_out.lines().filter(|l| l.starts_with("  ")) {
                assert!(out.contains(line), "missing `{line}` in {out}");
            }
        }
        // The indexed engine reports the class-selected kernel for TC (A5).
        let out = run_on_source(
            &Command::Run {
                file: String::new(),
                check: false,
                engine: Some(EngineChoice::Indexed),
                threads: 2,
                timeout_ms: None,
                max_tuples: None,
                max_iterations: None,
                stats_json: false,
                trace: None,
                metrics: false,
                why: None,
                why_depth: DEFAULT_WHY_DEPTH,
            },
            TC,
        )
        .unwrap();
        assert!(out.contains("kernel:frontier"), "{out}");
    }

    #[test]
    fn plan_command_uses_query_forms() {
        let out = run_on_source(
            &Command::Plan {
                file: String::new(),
                forms: vec!["dv".into(), "vv".into()],
            },
            TC,
        )
        .unwrap();
        assert!(out.contains("P(dv)"));
        assert!(out.contains("P(vv)"));
        assert!(out.contains("compiled formula"));
    }

    #[test]
    fn plan_command_rejects_bad_arity() {
        let err = run_on_source(
            &Command::Plan {
                file: String::new(),
                forms: vec!["dvv".into()],
            },
            TC,
        )
        .unwrap_err();
        assert!(err.contains("arity"));
    }

    #[test]
    fn figure_command_renders_levels() {
        let out = run_on_source(
            &Command::Figure {
                file: String::new(),
                levels: 2,
                dot: true,
            },
            TC,
        )
        .unwrap();
        assert!(out.contains("--- G1 ---"));
        assert!(out.contains("--- G2 ---"));
        assert!(out.contains("graph \"G2\""));
    }

    #[test]
    fn load_rejects_invalid_programs() {
        assert!(load("P(x, y) :- P(x, z), P(z, y).").is_err()); // non-linear
        assert!(load("A(1, 2).").is_err()); // no recursion
        assert!(load("P(x y) :-").is_err()); // syntax
    }

    #[test]
    fn run_without_queries_is_an_error() {
        let err = run_on_source(
            &Command::Run {
                file: String::new(),
                check: false,
                engine: None,
                threads: 2,
                timeout_ms: None,
                max_tuples: None,
                max_iterations: None,
                stats_json: false,
                trace: None,
                metrics: false,
                why: None,
                why_depth: DEFAULT_WHY_DEPTH,
            },
            "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).",
        )
        .unwrap_err();
        assert!(err.contains("no ?- queries"));
    }

    #[test]
    fn missing_edb_relations_default_to_empty() {
        // Facts only for A; E is declared empty, so queries return nothing
        // rather than erroring.
        let src = "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).\nA(1, 2).\n?- P(1, y).";
        let out = run_on_source(
            &Command::Run {
                file: String::new(),
                check: true,
                engine: None,
                threads: 2,
                timeout_ms: None,
                max_tuples: None,
                max_iterations: None,
                stats_json: false,
                trace: None,
                metrics: false,
                why: None,
                why_depth: DEFAULT_WHY_DEPTH,
            },
            src,
        )
        .unwrap();
        assert!(out.contains("(0 answers)"), "{out}");
    }

    #[test]
    fn parse_args_serve_and_batch() {
        assert_eq!(
            parse_args(&args(&["serve", "f.dl", "--stdin"])).unwrap(),
            Command::Serve {
                file: "f.dl".into(),
                opts: ServiceOpts::default(),
                net: None,
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "serve",
                "f.dl",
                "--stdin",
                "--threads",
                "3",
                "--no-cache",
                "--max-tuples",
                "9"
            ]))
            .unwrap(),
            Command::Serve {
                file: "f.dl".into(),
                opts: ServiceOpts {
                    threads: 3,
                    no_cache: true,
                    max_tuples: Some(9),
                    ..ServiceOpts::default()
                },
                net: None,
            }
        );
        // serve needs exactly one transport.
        let err = parse_args(&args(&["serve", "f.dl"])).unwrap_err();
        assert!(err.contains("--stdin"), "{err}");
        assert!(err.contains("--listen"), "{err}");
        let err = parse_args(&args(&[
            "serve",
            "f.dl",
            "--stdin",
            "--listen",
            "127.0.0.1:0",
        ]))
        .unwrap_err();
        assert!(err.contains("exactly one"), "{err}");
        assert!(parse_args(&args(&["serve", "f.dl", "--stdin", "--threads", "0"])).is_err());

        assert_eq!(
            parse_args(&args(&[
                "batch",
                "f.dl",
                "--repeat",
                "3",
                "--stats-json",
                "--cache-capacity",
                "64"
            ]))
            .unwrap(),
            Command::Batch {
                file: "f.dl".into(),
                repeat: 3,
                stats_json: true,
                opts: ServiceOpts {
                    cache_capacity: 64,
                    ..ServiceOpts::default()
                },
            }
        );
        assert!(parse_args(&args(&["batch", "f.dl", "--repeat", "0"])).is_err());
        assert!(parse_args(&args(&["batch", "f.dl", "--bogus"])).is_err());
    }

    #[test]
    fn run_stats_json_requires_an_engine() {
        let err = parse_args(&args(&["run", "f.dl", "--stats-json"])).unwrap_err();
        assert!(err.contains("--engine"), "{err}");
        assert_eq!(
            parse_args(&args(&[
                "run",
                "f.dl",
                "--engine",
                "indexed",
                "--stats-json"
            ]))
            .unwrap(),
            Command::Run {
                file: "f.dl".into(),
                check: false,
                engine: Some(EngineChoice::Indexed),
                threads: 2,
                timeout_ms: None,
                max_tuples: None,
                max_iterations: None,
                stats_json: true,
                trace: None,
                metrics: false,
                why: None,
                why_depth: DEFAULT_WHY_DEPTH,
            }
        );
    }

    #[test]
    fn run_stats_json_emits_saturation_statistics() {
        for choice in [EngineChoice::Oracle, EngineChoice::Indexed] {
            let out = run_on_source(
                &Command::Run {
                    file: String::new(),
                    check: false,
                    engine: Some(choice),
                    threads: 2,
                    timeout_ms: None,
                    max_tuples: None,
                    max_iterations: None,
                    stats_json: true,
                    trace: None,
                    metrics: false,
                    why: None,
                    why_depth: DEFAULT_WHY_DEPTH,
                },
                TC,
            )
            .unwrap();
            let json = out
                .lines()
                .find(|l| l.starts_with('{'))
                .unwrap_or_else(|| panic!("no JSON line from {}: {out}", choice.label()));
            assert!(json.contains("\"iterations\""), "{json}");
            assert!(json.contains("\"tuples_derived\""), "{json}");
        }
    }

    #[test]
    fn run_check_reports_fingerprints() {
        let out = run_on_source(
            &Command::Run {
                file: String::new(),
                check: true,
                engine: None,
                threads: 2,
                timeout_ms: None,
                max_tuples: None,
                max_iterations: None,
                stats_json: false,
                trace: None,
                metrics: false,
                why: None,
                why_depth: DEFAULT_WHY_DEPTH,
            },
            TC,
        )
        .unwrap();
        let line = out
            .lines()
            .find(|l| l.starts_with("check: "))
            .unwrap_or_else(|| panic!("no check line: {out}"));
        assert!(line.contains("program="), "{line}");
        assert!(line.contains("db="), "{line}");
        // 16 hex digits each, and stable across runs.
        let again = run_on_source(
            &Command::Run {
                file: String::new(),
                check: true,
                engine: None,
                threads: 2,
                timeout_ms: None,
                max_tuples: None,
                max_iterations: None,
                stats_json: false,
                trace: None,
                metrics: false,
                why: None,
                why_depth: DEFAULT_WHY_DEPTH,
            },
            TC,
        )
        .unwrap();
        assert!(again.contains(line), "fingerprints must be deterministic");
    }

    #[test]
    fn batch_answers_match_run_and_second_round_hits_the_cache() {
        let cmd = Command::Batch {
            file: String::new(),
            repeat: 2,
            stats_json: true,
            opts: ServiceOpts::default(),
        };
        let out = run_on_source(&cmd, TC).unwrap();
        // Same answer rows as the plan-driven run.
        assert!(out.contains("(3 answers)"), "{out}");
        assert!(out.contains("yes"), "{out}");
        assert!(out.contains("no"), "{out}");
        // Bound TC queries dispatch to the magic kernel; the first round
        // misses, the repeat round hits.
        assert!(out.contains("kernel:magic"), "{out}");
        assert!(out.contains("cache:miss"), "{out}");
        assert!(out.contains("cache:hit"), "{out}");
        // The closing stats line is one JSON object.
        let json = out.lines().last().unwrap_or_default();
        assert!(json.starts_with('{'), "{out}");
        assert!(json.contains("\"queries\":6"), "{json}");
        assert!(json.contains("\"hits\":3"), "{json}");
    }

    #[test]
    fn batch_without_cache_never_hits() {
        let cmd = Command::Batch {
            file: String::new(),
            repeat: 2,
            stats_json: false,
            opts: ServiceOpts {
                no_cache: true,
                ..ServiceOpts::default()
            },
        };
        let out = run_on_source(&cmd, TC).unwrap();
        assert!(out.contains("cache:bypass"), "{out}");
        assert!(!out.contains("cache:hit"), "{out}");
    }

    #[test]
    fn serve_on_source_speaks_the_line_protocol() {
        let input = b"?- P(1, y).\n+A(4, 5).\n+E(4, 5).\n?- P(1, y).\n!quit\n" as &[u8];
        let mut output = Vec::new();
        serve_on_source(TC, &ServiceOpts::default(), input, &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("\"count\":3"), "{text}");
        assert!(lines[1].contains("\"version\":1"), "{text}");
        assert!(lines[2].contains("\"version\":2"), "{text}");
        assert!(lines[3].contains("\"count\":4"), "{text}");
    }

    #[test]
    fn serve_command_is_rejected_by_the_buffered_executor() {
        let err = run_on_source(
            &Command::Serve {
                file: String::new(),
                opts: ServiceOpts::default(),
                net: None,
            },
            TC,
        )
        .unwrap_err();
        assert!(err.contains("--stdin"), "{err}");
    }

    #[test]
    fn parse_args_serve_listen() {
        assert_eq!(
            parse_args(&args(&["serve", "f.dl", "--listen", "127.0.0.1:0"])).unwrap(),
            Command::Serve {
                file: "f.dl".into(),
                opts: ServiceOpts::default(),
                net: Some(NetOpts::for_addr("127.0.0.1:0")),
            }
        );
        // Network flags compose with service flags, in any order.
        assert_eq!(
            parse_args(&args(&[
                "serve",
                "f.dl",
                "--max-connections",
                "8",
                "--listen",
                "127.0.0.1:4004",
                "--threads",
                "2",
                "--drain-ms",
                "750",
                "--max-queue-wait-ms",
                "40",
                "--retry-after-ms",
                "15",
                "--idle-timeout-ms",
                "2000"
            ]))
            .unwrap(),
            Command::Serve {
                file: "f.dl".into(),
                opts: ServiceOpts {
                    threads: 2,
                    ..ServiceOpts::default()
                },
                net: Some(NetOpts {
                    listen: "127.0.0.1:4004".into(),
                    max_connections: 8,
                    idle_timeout_ms: 2000,
                    drain_ms: 750,
                    max_queue_wait_ms: 40,
                    retry_after_ms: 15,
                    postmortem: None,
                }),
            }
        );
        // Network flags without --listen are a usage error.
        let err = parse_args(&args(&[
            "serve",
            "f.dl",
            "--stdin",
            "--max-connections",
            "8",
        ]))
        .unwrap_err();
        assert!(err.contains("--listen"), "{err}");
        assert!(parse_args(&args(&["serve", "f.dl", "--listen"])).is_err());
        assert!(parse_args(&args(&[
            "serve",
            "f.dl",
            "--listen",
            "x",
            "--max-connections",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "serve",
            "f.dl",
            "--listen",
            "x",
            "--drain-ms",
            "abc"
        ]))
        .is_err());
    }

    #[test]
    fn net_opts_describe_a_net_config() {
        let mut opts = NetOpts::for_addr("127.0.0.1:0");
        opts.max_connections = 3;
        opts.idle_timeout_ms = 1500;
        opts.drain_ms = 900;
        opts.max_queue_wait_ms = 35;
        opts.retry_after_ms = 12;
        opts.postmortem = Some("/tmp/pm.jsonl".into());
        let config = opts.config();
        assert_eq!(config.max_connections, 3);
        assert_eq!(config.idle_timeout, Duration::from_millis(1500));
        assert_eq!(config.drain_deadline, Duration::from_millis(900));
        assert_eq!(config.max_queue_wait, Duration::from_millis(35));
        assert_eq!(config.retry_after_ms, 12);
        assert_eq!(
            config.postmortem,
            Some(std::path::PathBuf::from("/tmp/pm.jsonl"))
        );
    }

    #[test]
    fn parse_args_trace_and_postmortem() {
        // `serve --stdin --trace FILE` is a service option.
        assert_eq!(
            parse_args(&args(&["serve", "f.dl", "--stdin", "--trace", "t.jsonl"])).unwrap(),
            Command::Serve {
                file: "f.dl".into(),
                opts: ServiceOpts {
                    trace: Some("t.jsonl".into()),
                    ..ServiceOpts::default()
                },
                net: None,
            }
        );
        // `--postmortem FILE` is a network option and lands in NetOpts.
        match parse_args(&args(&[
            "serve",
            "f.dl",
            "--listen",
            "127.0.0.1:0",
            "--postmortem",
            "pm.jsonl",
        ]))
        .unwrap()
        {
            Command::Serve { net: Some(n), .. } => {
                assert_eq!(n.postmortem.as_deref(), Some("pm.jsonl"));
            }
            other => panic!("expected serve --listen, got {other:?}"),
        }
        // ... and therefore requires --listen.
        let err = parse_args(&args(&[
            "serve",
            "f.dl",
            "--stdin",
            "--postmortem",
            "pm.jsonl",
        ]))
        .unwrap_err();
        assert!(err.contains("--listen"), "{err}");
        assert!(parse_args(&args(&["serve", "f.dl", "--stdin", "--trace"])).is_err());
        assert!(parse_args(&args(&["serve", "f.dl", "--listen", "x", "--postmortem"])).is_err());
    }

    #[test]
    fn serve_trace_file_records_request_spans() {
        let dir = std::env::temp_dir().join("recurs_cli_lib_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("serve_trace_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = ServiceOpts {
            trace: Some(path.to_string_lossy().into_owned()),
            ..ServiceOpts::default()
        };
        let input = b"?- P(1, y).\n!quit\n" as &[u8];
        let mut output = Vec::new();
        serve_on_source(TC, &opts, input, &mut output).unwrap();
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(!trace.trim().is_empty(), "trace file is empty");
        let mut saw_span = false;
        for line in trace.lines() {
            let v = recurs_obs::jsonl::parse(line)
                .unwrap_or_else(|e| panic!("bad trace line `{line}`: {e}"));
            if matches!(v.get("kind"), Some(Value::Str(k)) if k == "span") {
                saw_span = true;
            }
        }
        assert!(saw_span, "no span events in {trace}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_listen_on_source_announces_drains_and_serves() {
        use recurs_net::proto::json_str_field;

        let cancel = CancelToken::new();
        let (addr_tx, addr_rx) = std::sync::mpsc::channel::<String>();
        let worker_cancel = cancel.clone();
        let server = std::thread::spawn(move || {
            // A writer that hands the announce line to the test thread.
            struct Announce(std::sync::mpsc::Sender<String>, Vec<u8>);
            impl std::io::Write for Announce {
                fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                    self.1.extend_from_slice(buf);
                    Ok(buf.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    let text = String::from_utf8_lossy(&self.1).to_string();
                    let _ = self.0.send(text);
                    Ok(())
                }
            }
            let net = NetOpts::for_addr("127.0.0.1:0");
            serve_listen_on_source(
                TC,
                &ServiceOpts::default(),
                &net,
                worker_cancel,
                Announce(addr_tx, Vec::new()),
            )
        });
        let line = addr_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("announce line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("bad announce line: {line}"))
            .to_string();
        let mut client =
            recurs_net::Client::connect(&addr, Duration::from_secs(5)).expect("connect");
        let reply = client.roundtrip("?- P(1, y).").expect("query");
        assert_eq!(json_str_field(&reply, "type"), Some("answers"), "{reply}");
        // Fire the "signal": the watcher drains and run() returns a report.
        cancel.cancel();
        let report = server.join().expect("server thread").expect("serve ok");
        assert!(!report.forced, "an idle server must drain cleanly");
    }

    #[test]
    fn serve_stdin_drained_speaks_the_protocol_without_a_signal() {
        let input = b"?- P(1, y).\n+A(4, 5).\n+E(4, 5).\n?- P(1, y).\n!quit\n" as &[u8];
        let mut output = Vec::new();
        serve_stdin_drained(
            TC,
            &ServiceOpts::default(),
            CancelToken::new(),
            Duration::from_secs(5),
            input,
            &mut output,
        )
        .unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("\"count\":3"), "{text}");
        assert!(lines[3].contains("\"count\":4"), "{text}");
    }

    #[test]
    fn serve_stdin_drained_stops_reading_after_cancel_and_reports_a_clean_drain() {
        // A pre-cancelled token: the loop must not start any request, and
        // the idle monitor must report exit code 0 (clean drain).
        let token = CancelToken::new();
        token.cancel();
        let input = b"?- P(1, y).\n" as &[u8];
        let mut output = Vec::new();
        let (code_tx, code_rx) = std::sync::mpsc::channel::<i32>();
        serve_stdin_impl(
            TC,
            &ServiceOpts::default(),
            token,
            Duration::from_secs(5),
            input,
            &mut output,
            move |code| {
                let _ = code_tx.send(code);
            },
        )
        .unwrap();
        assert!(output.is_empty(), "no request may start after the drain");
        let code = code_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("monitor verdict");
        assert_eq!(code, 0, "an idle serve loop drains cleanly");
    }
}
