//! The `recurs` command-line tool. See [`recurs_cli::USAGE`].
//!
//! Exit codes: 0 — the run completed (reached the fixpoint); 2 — a budget
//! or Ctrl-C truncated the run (the printed answers are a sound
//! under-approximation); 1 — usage, file, program, or engine error.

use recurs_cli::{execute, parse_args, Command, USAGE};
use recurs_datalog::govern::CancelToken;

/// Installs a SIGINT handler that flips `token`, so a long saturation is
/// stopped cooperatively (and reported as a truncated run) instead of the
/// process being killed mid-write.
#[cfg(unix)]
fn install_ctrl_c(token: CancelToken) {
    use std::sync::OnceLock;
    static TOKEN: OnceLock<CancelToken> = OnceLock::new();
    extern "C" fn on_sigint(_signum: i32) {
        // Only async-signal-safe work here: a single atomic store.
        if let Some(t) = TOKEN.get() {
            t.cancel();
        }
    }
    if TOKEN.set(token).is_ok() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
fn install_ctrl_c(_token: CancelToken) {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let source = match &cmd {
        Command::Help => String::new(),
        Command::Classify { file }
        | Command::Plan { file, .. }
        | Command::Run { file, .. }
        | Command::Figure { file, .. }
        | Command::Serve { file, .. }
        | Command::Batch { file, .. } => match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                std::process::exit(1);
            }
        },
    };
    if matches!(cmd, Command::Help) {
        println!("{USAGE}");
        return;
    }
    if let Command::Serve { opts, .. } = &cmd {
        // Streaming command: replies go out line by line, so it bypasses the
        // buffered `execute` path.
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) = recurs_cli::serve_on_source(&source, opts, stdin.lock(), stdout.lock()) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let token = CancelToken::new();
    install_ctrl_c(token.clone());
    match execute(&cmd, &source, Some(token)) {
        Ok(out) => {
            print!("{}", out.text);
            if !out.outcome.is_complete() {
                std::process::exit(2);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
