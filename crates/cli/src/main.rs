//! The `recurs` command-line tool. See [`recurs_cli::USAGE`].
//!
//! Exit codes: 0 — the run completed (reached the fixpoint); 2 — a budget
//! or Ctrl-C truncated the run (the printed answers are a sound
//! under-approximation); 1 — usage, file, program, or engine error.

use recurs_cli::{execute, parse_args, Command, USAGE};
use recurs_datalog::govern::CancelToken;

/// Installs SIGINT and SIGTERM handlers that flip `token`, so a long
/// saturation is stopped cooperatively (and reported as a truncated run) and
/// a serve transport drains gracefully, instead of the process being killed
/// mid-write.
#[cfg(unix)]
fn install_signal_handlers(token: CancelToken) {
    use std::sync::OnceLock;
    static TOKEN: OnceLock<CancelToken> = OnceLock::new();
    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: a single atomic store.
        if let Some(t) = TOKEN.get() {
            t.cancel();
        }
    }
    if TOKEN.set(token).is_ok() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
fn install_signal_handlers(_token: CancelToken) {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let source = match &cmd {
        Command::Help => String::new(),
        Command::Classify { file }
        | Command::Plan { file, .. }
        | Command::Run { file, .. }
        | Command::Figure { file, .. }
        | Command::Serve { file, .. }
        | Command::Batch { file, .. } => match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                std::process::exit(1);
            }
        },
    };
    if matches!(cmd, Command::Help) {
        println!("{USAGE}");
        return;
    }
    if let Command::Serve { opts, net, .. } = &cmd {
        // Streaming command: replies go out frame by frame (or line by
        // line), so it bypasses the buffered `execute` path. SIGTERM and
        // Ctrl-C drain the transport gracefully.
        let token = CancelToken::new();
        install_signal_handlers(token.clone());
        match net {
            Some(net) => {
                match recurs_cli::serve_listen_on_source(
                    &source,
                    opts,
                    net,
                    token,
                    std::io::stdout(),
                ) {
                    Ok(report) => {
                        if report.forced {
                            // The drain deadline expired; in-flight work was
                            // hard-cancelled (truncated, sound replies).
                            std::process::exit(2);
                        }
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
            None => {
                let stdin = std::io::stdin();
                let stdout = std::io::stdout();
                let drain = std::time::Duration::from_secs(5);
                if let Err(e) = recurs_cli::serve_stdin_drained(
                    &source,
                    opts,
                    token,
                    drain,
                    stdin.lock(),
                    stdout.lock(),
                ) {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }
    let token = CancelToken::new();
    install_signal_handlers(token.clone());
    match execute(&cmd, &source, Some(token)) {
        Ok(out) => {
            print!("{}", out.text);
            if !out.outcome.is_complete() {
                std::process::exit(2);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
