//! The `recurs` command-line tool. See [`recurs_cli::USAGE`].

use recurs_cli::{parse_args, run_on_source, Command, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let source = match &cmd {
        Command::Help => String::new(),
        Command::Classify { file }
        | Command::Plan { file, .. }
        | Command::Run { file, .. }
        | Command::Figure { file, .. } => match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                std::process::exit(2);
            }
        },
    };
    if matches!(cmd, Command::Help) {
        println!("{USAGE}");
        return;
    }
    match run_on_source(&cmd, &source) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
