//! End-to-end subprocess tests of the `recurs` binary: the exit-code
//! contract (0 complete / 2 truncated / 1 error) and the budget flags, run
//! exactly as a shell user would.

use std::process::{Command, Output};

fn dataset(name: &str) -> String {
    format!("{}/../../datasets/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn recurs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_recurs"))
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn recurs: {e}"))
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn complete_run_exits_zero() {
    let out = recurs(&[
        "run",
        &dataset("transitive_closure.dl"),
        "--engine",
        "indexed",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("engine:indexed"));
    assert!(!stdout(&out).contains("truncated"));
}

#[test]
fn tuple_ceiling_stops_class_c_with_exit_code_two() {
    // The acceptance workload: a class-C (unbounded) formula stopped by
    // `--max-tuples`, still printing sound partial answers.
    let out = recurs(&[
        "run",
        &dataset("unbounded_s9.dl"),
        "--check",
        "--engine",
        "indexed",
        "--max-tuples",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("truncated: tuple ceiling"), "{text}");
    assert!(text.contains("subset of the fixpoint"), "{text}");
    assert!(!text.contains("DISAGREES"), "{text}");
}

#[test]
fn zero_timeout_stops_before_any_work_with_exit_code_two() {
    let out = recurs(&[
        "run",
        &dataset("unbounded_s9.dl"),
        "--engine",
        "parallel",
        "--threads",
        "3",
        "--timeout-ms",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("truncated: deadline"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn iteration_cap_truncates_the_oracle_engine() {
    let out = recurs(&[
        "run",
        &dataset("transitive_closure.dl"),
        "--engine",
        "oracle",
        "--max-iterations",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("truncated: iteration cap"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn budget_flags_without_engine_are_a_usage_error() {
    let out = recurs(&[
        "run",
        &dataset("transitive_closure.dl"),
        "--max-tuples",
        "5",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("--engine"), "{}", stderr(&out));
}

#[test]
fn unreadable_file_exits_one() {
    let out = recurs(&["run", "no/such/file.dl", "--engine", "indexed"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
}

#[test]
fn bad_usage_exits_one() {
    let out = recurs(&["run", &dataset("transitive_closure.dl"), "--bogus"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown option"), "{}", stderr(&out));
}

#[test]
fn invalid_program_exits_one() {
    // A syntactically valid file with no recursion is rejected by load().
    let dir = std::env::temp_dir().join("recurs_cli_process_tests");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir: {e}"));
    let path = dir.join("nonrecursive.dl");
    std::fs::write(&path, "Q(x) :- A(x, x).\nA(1, 1).\n?- Q(1).\n")
        .unwrap_or_else(|e| panic!("write: {e}"));
    let out = recurs(&[
        "run",
        path.to_string_lossy().as_ref(),
        "--engine",
        "indexed",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("invalid program"), "{}", stderr(&out));
}

#[test]
fn help_exits_zero_and_documents_exit_codes() {
    let out = recurs(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("--timeout-ms"), "{text}");
    assert!(text.contains("EXIT CODES"), "{text}");
}
