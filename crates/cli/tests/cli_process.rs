//! End-to-end subprocess tests of the `recurs` binary: the exit-code
//! contract (0 complete / 2 truncated / 1 error) and the budget flags, run
//! exactly as a shell user would.

use std::process::{Command, Output};

fn dataset(name: &str) -> String {
    format!("{}/../../datasets/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn recurs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_recurs"))
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn recurs: {e}"))
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn complete_run_exits_zero() {
    let out = recurs(&[
        "run",
        &dataset("transitive_closure.dl"),
        "--engine",
        "indexed",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("engine:indexed"));
    assert!(!stdout(&out).contains("truncated"));
}

#[test]
fn tuple_ceiling_stops_class_c_with_exit_code_two() {
    // The acceptance workload: a class-C (unbounded) formula stopped by
    // `--max-tuples`, still printing sound partial answers.
    let out = recurs(&[
        "run",
        &dataset("unbounded_s9.dl"),
        "--check",
        "--engine",
        "indexed",
        "--max-tuples",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("truncated: tuple ceiling"), "{text}");
    assert!(text.contains("subset of the fixpoint"), "{text}");
    assert!(!text.contains("DISAGREES"), "{text}");
}

#[test]
fn zero_timeout_stops_before_any_work_with_exit_code_two() {
    let out = recurs(&[
        "run",
        &dataset("unbounded_s9.dl"),
        "--engine",
        "parallel",
        "--threads",
        "3",
        "--timeout-ms",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("truncated: deadline"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn iteration_cap_truncates_the_oracle_engine() {
    let out = recurs(&[
        "run",
        &dataset("transitive_closure.dl"),
        "--engine",
        "oracle",
        "--max-iterations",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("truncated: iteration cap"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn budget_flags_without_engine_are_a_usage_error() {
    let out = recurs(&[
        "run",
        &dataset("transitive_closure.dl"),
        "--max-tuples",
        "5",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("--engine"), "{}", stderr(&out));
}

#[test]
fn unreadable_file_exits_one() {
    let out = recurs(&["run", "no/such/file.dl", "--engine", "indexed"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
}

#[test]
fn bad_usage_exits_one() {
    let out = recurs(&["run", &dataset("transitive_closure.dl"), "--bogus"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown option"), "{}", stderr(&out));
}

#[test]
fn invalid_program_exits_one() {
    // A syntactically valid file with no recursion is rejected by load().
    let dir = std::env::temp_dir().join("recurs_cli_process_tests");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir: {e}"));
    let path = dir.join("nonrecursive.dl");
    std::fs::write(&path, "Q(x) :- A(x, x).\nA(1, 1).\n?- Q(1).\n")
        .unwrap_or_else(|e| panic!("write: {e}"));
    let out = recurs(&[
        "run",
        path.to_string_lossy().as_ref(),
        "--engine",
        "indexed",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("invalid program"), "{}", stderr(&out));
}

#[test]
fn help_exits_zero_and_documents_exit_codes() {
    let out = recurs(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("--timeout-ms"), "{text}");
    assert!(text.contains("EXIT CODES"), "{text}");
}

/// Extracts the unsigned integer value of a flat `"key":N` pair from a
/// JSON line (the vendored serde has no parser, and these events are flat).
fn json_uint(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn trace_file_reconstructs_the_run_and_cross_checks_stats_json() {
    // The acceptance scenario: a single `run --trace` on the TC dataset
    // produces a JSON-lines trace from which per-rule tuple counts,
    // per-iteration deltas, the class verdict, and the total wall time can
    // be reconstructed — and the reconstruction agrees with --stats-json.
    let dir = std::env::temp_dir().join("recurs_cli_process_tests");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir: {e}"));
    let trace_path = dir.join("tc_trace.jsonl");
    let out = recurs(&[
        "run",
        &dataset("transitive_closure.dl"),
        "--engine",
        "indexed",
        "--stats-json",
        "--trace",
        trace_path.to_string_lossy().as_ref(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let trace = std::fs::read_to_string(&trace_path).unwrap_or_else(|e| panic!("read trace: {e}"));
    let lines: Vec<&str> = trace.lines().collect();
    assert!(!lines.is_empty(), "trace is empty");
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "trace line {i} is not a JSON object: {line}"
        );
        assert_eq!(json_uint(line, "seq"), Some(i as u64), "bad seq: {line}");
        assert!(json_uint(line, "ts_us").is_some(), "no ts_us: {line}");
    }

    // Classification provenance: the TC formula is class A3 and the engine
    // dispatches the frontier kernel.
    let verdict = lines
        .iter()
        .find(|l| l.contains("\"kind\":\"classify.verdict\""))
        .unwrap_or_else(|| panic!("no classify.verdict event in {trace}"));
    assert!(verdict.contains("\"class\":\"A5\""), "{verdict}");
    assert!(verdict.contains("\"kernel\":\"frontier\""), "{verdict}");
    assert!(verdict.contains("\"components\":["), "{verdict}");
    assert!(verdict.contains("\"weight\":"), "{verdict}");

    // Per-rule and per-iteration provenance.
    let rules: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"engine.rule\""))
        .collect();
    assert!(!rules.is_empty(), "no engine.rule events in {trace}");
    for r in &rules {
        assert!(json_uint(r, "rows_in").is_some(), "{r}");
        assert!(json_uint(r, "derived").is_some(), "{r}");
        assert!(r.contains("\"head\":\"P\""), "{r}");
    }
    let iters: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"engine.iteration\""))
        .collect();
    assert!(!iters.is_empty(), "no engine.iteration events in {trace}");

    // Cross-check the trace against the --stats-json line.
    let stats_stdout = stdout(&out);
    let stats_line = stats_stdout
        .lines()
        .find(|l| l.contains("\"tuples_derived\":"))
        .unwrap_or_else(|| panic!("no stats json in {stats_stdout}"));
    let iteration_count = json_uint(stats_line, "iteration_count").unwrap();
    assert_eq!(iters.len() as u64, iteration_count, "{trace}");
    let new_total: u64 = iters
        .iter()
        .map(|l| json_uint(l, "new_tuples").unwrap())
        .sum();
    assert_eq!(
        new_total,
        json_uint(stats_line, "tuples_derived").unwrap(),
        "trace new_tuples disagree with stats tuples_derived"
    );
    let complete = lines
        .iter()
        .find(|l| l.contains("\"kind\":\"engine.complete\""))
        .unwrap_or_else(|| panic!("no engine.complete event in {trace}"));
    assert!(
        json_uint(complete, "total_duration_us").is_some(),
        "{complete}"
    );
    assert_eq!(
        json_uint(complete, "tuples_derived").unwrap(),
        json_uint(stats_line, "tuples_derived").unwrap()
    );
}

#[test]
fn truncated_trace_names_the_cause() {
    let dir = std::env::temp_dir().join("recurs_cli_process_tests");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir: {e}"));
    let trace_path = dir.join("trunc_trace.jsonl");
    let out = recurs(&[
        "run",
        &dataset("unbounded_s9.dl"),
        "--engine",
        "indexed",
        "--max-tuples",
        "2",
        "--trace",
        trace_path.to_string_lossy().as_ref(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let trace = std::fs::read_to_string(&trace_path).unwrap_or_else(|e| panic!("read trace: {e}"));
    let truncated = trace
        .lines()
        .find(|l| l.contains("\"kind\":\"engine.truncated\""))
        .unwrap_or_else(|| panic!("no engine.truncated event in {trace}"));
    assert!(
        truncated.contains("\"reason\":\"tuple ceiling\""),
        "{truncated}"
    );
}

/// Checks one Prometheus text exposition: `# TYPE`/`# EOF` comment lines
/// plus `name{labels} value` samples, nothing else. Returns the sample
/// count so callers can assert non-emptiness.
fn check_prometheus_text(text: &str) -> usize {
    let mut samples = 0;
    let mut saw_eof = false;
    for line in text.lines() {
        assert!(!saw_eof, "content after # EOF: {line}");
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or_default();
            let kind = parts.next().unwrap_or_default();
            assert!(!name.is_empty(), "bad TYPE line: {line}");
            assert!(
                kind == "counter" || kind == "histogram",
                "bad TYPE kind: {line}"
            );
            continue;
        }
        // Sample: name{labels} value  (labels optional).
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad sample line: {line}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value: {line}"
        );
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name: {line}"
        );
        if let Some(open) = series.find('{') {
            assert!(series.ends_with('}'), "unclosed label set: {line}");
            let labels = &series[open + 1..series.len() - 1];
            for pair in labels.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .unwrap_or_else(|| panic!("bad label pair in {line}"));
                assert!(!k.is_empty() && v.starts_with('"') && v.ends_with('"'));
            }
        }
        samples += 1;
    }
    assert!(saw_eof, "missing # EOF terminator:\n{text}");
    samples
}

#[test]
fn metrics_flag_appends_parseable_prometheus_text() {
    let out = recurs(&[
        "run",
        &dataset("transitive_closure.dl"),
        "--engine",
        "indexed",
        "--metrics",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    let metrics_start = text
        .find("# TYPE")
        .unwrap_or_else(|| panic!("no Prometheus text in {text}"));
    let samples = check_prometheus_text(&text[metrics_start..]);
    assert!(samples > 0);
    assert!(text.contains("recurs_engine_iterations_total"), "{text}");
    assert!(
        text.contains("recurs_engine_runs_total{kernel=\"frontier\"}"),
        "{text}"
    );
}

fn sigterm(child: &std::process::Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap_or_else(|e| panic!("cannot run kill: {e}"));
    assert!(status.success(), "kill -TERM failed");
}

/// Spawns `recurs serve --listen 127.0.0.1:0 <extra>` and parses the
/// announce line for the ephemeral address.
fn spawn_serve_listen(extra: &[&str]) -> (std::process::Child, String) {
    use std::io::BufRead as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_recurs"))
        .args([
            "serve",
            &dataset("transitive_closure.dl"),
            "--listen",
            "127.0.0.1:0",
        ])
        .args(extra)
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn recurs serve --listen: {e}"));
    let out = child
        .stdout
        .take()
        .unwrap_or_else(|| panic!("no stdout pipe"));
    let mut line = String::new();
    std::io::BufReader::new(out)
        .read_line(&mut line)
        .unwrap_or_else(|e| panic!("read announce line: {e}"));
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("bad announce line: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn serve_listen_process_answers_health_queries_and_metrics_over_tcp() {
    use std::time::Duration;
    let (mut child, addr) = spawn_serve_listen(&[]);
    let mut client =
        recurs_net::Client::connect(&addr, Duration::from_secs(5)).expect("connect to server");
    let health = client.roundtrip("!health").expect("health");
    assert!(health.contains("\"ok\":true"), "{health}");
    assert!(health.contains("\"state\":\"accepting\""), "{health}");
    let reply = client.roundtrip("?- P(1, y).").expect("query");
    assert!(reply.contains("\"type\":\"answers\""), "{reply}");
    let metrics = client.roundtrip("!metrics").expect("metrics");
    let samples = check_prometheus_text(&metrics);
    assert!(samples > 0, "{metrics}");
    assert!(metrics.contains("recurs_net_requests_total"), "{metrics}");
    assert!(metrics.contains("recurs_serve_queries_total"), "{metrics}");
    drop(client);
    sigterm(&child);
    let status = child.wait().unwrap_or_else(|e| panic!("wait: {e}"));
    assert_eq!(status.code(), Some(0), "an idle server drains cleanly");
}

#[test]
fn serve_listen_process_sigterm_mid_run_answers_every_in_flight_request() {
    use std::time::Duration;
    let (mut child, addr) = spawn_serve_listen(&["--drain-ms", "5000"]);
    let mut client =
        recurs_net::Client::connect(&addr, Duration::from_secs(5)).expect("connect to server");
    // Admission roundtrip first, so the drain cannot race the accept.
    client.roundtrip("!health").expect("admitted");
    const PIPELINED: u64 = 8;
    for i in 1..=PIPELINED {
        client
            .send(&format!("?- P({i}, y)."))
            .expect("pipelined send");
    }
    sigterm(&child);
    // Zero lost in-flight responses: every accepted request is answered, in
    // order, after the signal.
    for i in 1..=PIPELINED {
        let reply = client
            .recv()
            .unwrap_or_else(|e| panic!("lost in-flight reply {i}: {e:?}"));
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert!(reply.contains(&format!("P({i}, y)")), "{reply}");
    }
    // Then the drained server closes the connection cleanly.
    assert!(client.recv().is_err(), "expected a close after the drain");
    let status = child.wait().unwrap_or_else(|e| panic!("wait: {e}"));
    assert_eq!(status.code(), Some(0), "a clean drain exits 0");
}

#[test]
fn serve_stdin_sigterm_drains_with_exit_zero_while_stdin_stays_open() {
    use std::io::{BufRead as _, Write as _};
    let mut child = Command::new(env!("CARGO_BIN_EXE_recurs"))
        .args(["serve", &dataset("transitive_closure.dl"), "--stdin"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn recurs serve: {e}"));
    let mut stdin = child.stdin.take().unwrap_or_else(|| panic!("no stdin"));
    stdin
        .write_all(b"?- P(1, y).\n")
        .unwrap_or_else(|e| panic!("write stdin: {e}"));
    stdin.flush().unwrap_or_else(|e| panic!("flush stdin: {e}"));
    let out = child.stdout.take().unwrap_or_else(|| panic!("no stdout"));
    let mut reply = String::new();
    std::io::BufReader::new(out)
        .read_line(&mut reply)
        .unwrap_or_else(|e| panic!("read reply: {e}"));
    assert!(reply.contains("\"type\":\"answers\""), "{reply}");
    // stdin stays open: the exit below is the drain, not an EOF return.
    sigterm(&child);
    let status = child.wait().unwrap_or_else(|e| panic!("wait: {e}"));
    assert_eq!(
        status.code(),
        Some(0),
        "SIGTERM drains the stdin loop to exit 0"
    );
    drop(stdin);
}

#[test]
fn serve_listen_rejects_an_unbindable_address_with_exit_one() {
    let out = recurs(&[
        "serve",
        &dataset("transitive_closure.dl"),
        "--listen",
        "256.0.0.1:0",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot listen"), "{}", stderr(&out));
}

#[test]
fn serve_stdin_answers_metrics_with_parseable_prometheus_text() {
    use std::io::Write as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_recurs"))
        .args(["serve", &dataset("transitive_closure.dl"), "--stdin"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn recurs serve: {e}"));
    child
        .stdin
        .take()
        .unwrap_or_else(|| panic!("no stdin"))
        .write_all(b"?- P(1, y).\n!metrics\n!quit\n")
        .unwrap_or_else(|e| panic!("write stdin: {e}"));
    let out = child
        .wait_with_output()
        .unwrap_or_else(|e| panic!("wait: {e}"));
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    let first_newline = text
        .find('\n')
        .unwrap_or_else(|| panic!("no reply: {text}"));
    assert!(
        text[..first_newline].contains("\"type\":\"answers\""),
        "{text}"
    );
    let metrics = &text[first_newline + 1..];
    let samples = check_prometheus_text(metrics);
    assert!(samples > 0, "{metrics}");
    assert!(metrics.contains("recurs_serve_queries_total"), "{metrics}");
    assert!(
        metrics.contains("recurs_serve_query_seconds_bucket"),
        "{metrics}"
    );
    assert!(
        metrics.contains("recurs_serve_cache_ops_total"),
        "{metrics}"
    );
}

#[test]
fn run_why_prints_a_derivation_tree_from_the_shell() {
    // P(1, 6) in the flight network: 1 -> 2 -> 5 -> 6.
    let out = recurs(&["run", &dataset("transitive_closure.dl"), "--why", "P(1, 6)"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("P(1, 6) is derived"), "{text}");
    assert!(text.contains("[recursive rule]"), "{text}");
    assert!(text.contains("[edb]"), "{text}");

    let out = recurs(&["run", &dataset("transitive_closure.dl"), "--why", "P(6, 1)"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("P(6, 1) is not derivable"),
        "{}",
        stdout(&out)
    );

    // A foreign predicate is a usage error (exit 1).
    let out = recurs(&["run", &dataset("transitive_closure.dl"), "--why", "Q(1, 6)"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(
        stderr(&out).contains("recursive predicate"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn serve_stdin_answers_explain_and_why_with_a_chosen_trace_id() {
    use std::io::Write as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_recurs"))
        .args(["serve", &dataset("transitive_closure.dl"), "--stdin"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn recurs serve: {e}"));
    child
        .stdin
        .take()
        .unwrap_or_else(|| panic!("no stdin"))
        .write_all(b"@trace=c0ffee !explain P(1, y).\nwhy P(1, 6).\n!quit\n")
        .unwrap_or_else(|e| panic!("write stdin: {e}"));
    let out = child
        .wait_with_output()
        .unwrap_or_else(|e| panic!("wait: {e}"));
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    // The explain audit echoes the client-supplied trace id and carries the
    // plan verdict, kernel choice, and span breakdown.
    assert!(lines[0].contains("\"type\":\"explain\""), "{text}");
    assert!(
        lines[0].contains("\"trace\":\"0000000000c0ffee\""),
        "{text}"
    );
    assert!(lines[0].contains("\"classification\""), "{text}");
    assert!(lines[0].contains("\"kernel\""), "{text}");
    assert!(lines[0].contains("\"spans\""), "{text}");
    // The why reply carries a verified derivation tree.
    assert!(lines[1].contains("\"type\":\"why\""), "{text}");
    assert!(lines[1].contains("\"derived\":true"), "{text}");
    assert!(lines[1].contains("\"tree\""), "{text}");
}
