//! Integration tests driving the CLI commands over the shipped `datasets/`
//! files — the same flows a user runs from the shell.

use recurs_cli::{run_on_source, Command};

fn dataset(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../datasets");
    std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("cannot read dataset {name}: {e}"))
}

#[test]
fn transitive_closure_dataset_runs_checked() {
    let src = dataset("transitive_closure.dl");
    let out = run_on_source(
        &Command::Run {
            file: String::new(),
            check: true,
        },
        &src,
    )
    .unwrap();
    assert!(out.contains("[Counting]"), "{out}");
    assert!(out.contains("yes"), "{out}");
    assert!(out.contains("no"), "{out}");
    assert!(!out.contains("DISAGREES"), "{out}");
}

#[test]
fn transitive_closure_dataset_classifies() {
    let src = dataset("transitive_closure.dl");
    let out = run_on_source(
        &Command::Classify { file: String::new() },
        &src,
    )
    .unwrap();
    assert!(out.contains("strongly stable       : true"), "{out}");
}

#[test]
fn bounded_dataset_uses_bounded_strategy() {
    let src = dataset("bounded_s8.dl");
    let out = run_on_source(
        &Command::Run {
            file: String::new(),
            check: true,
        },
        &src,
    )
    .unwrap();
    assert!(out.contains("[Bounded]"), "{out}");
    assert!(!out.contains("DISAGREES"), "{out}");
}

#[test]
fn mixed_dataset_uses_magic_strategy() {
    let src = dataset("mixed_s12.dl");
    let out = run_on_source(
        &Command::Run {
            file: String::new(),
            check: true,
        },
        &src,
    )
    .unwrap();
    assert!(out.contains("[Magic]"), "{out}");
    assert!(!out.contains("DISAGREES"), "{out}");
}

#[test]
fn mixed_dataset_plan_shows_paper_formula() {
    let src = dataset("mixed_s12.dl");
    let out = run_on_source(
        &Command::Plan {
            file: String::new(),
            forms: vec!["dvv".into()],
        },
        &src,
    )
    .unwrap();
    // The paper's Example 14 plan shape.
    assert!(out.contains("A-C-B"), "{out}");
    assert!(out.contains("D^(k+1)"), "{out}");
    assert!(out.contains("dvv → ddv"), "{out}");
}

#[test]
fn figures_render_for_every_dataset() {
    for name in ["transitive_closure.dl", "bounded_s8.dl", "mixed_s12.dl"] {
        let src = dataset(name);
        let out = run_on_source(
            &Command::Figure {
                file: String::new(),
                levels: 2,
                dot: false,
            },
            &src,
        )
        .unwrap();
        assert!(out.contains("--- G1 ---"), "{name}: {out}");
        assert!(out.contains("--- G2 ---"), "{name}: {out}");
    }
}
