//! Integration tests driving the CLI commands over the shipped `datasets/`
//! files — the same flows a user runs from the shell.

use recurs_cli::{run_on_source, Command, EngineChoice};

fn dataset(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../datasets");
    std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("cannot read dataset {name}: {e}"))
}

fn run_cmd(check: bool, engine: Option<EngineChoice>) -> Command {
    Command::Run {
        file: String::new(),
        check,
        engine,
        threads: 3,
        timeout_ms: None,
        max_tuples: None,
        max_iterations: None,
        stats_json: false,
        trace: None,
        metrics: false,
        why: None,
        why_depth: recurs_ivm::DEFAULT_WHY_DEPTH,
    }
}

#[test]
fn transitive_closure_dataset_runs_checked() {
    let src = dataset("transitive_closure.dl");
    let out = run_on_source(&run_cmd(true, None), &src).unwrap();
    assert!(out.contains("[Counting]"), "{out}");
    assert!(out.contains("yes"), "{out}");
    assert!(out.contains("no"), "{out}");
    assert!(!out.contains("DISAGREES"), "{out}");
}

#[test]
fn transitive_closure_dataset_classifies() {
    let src = dataset("transitive_closure.dl");
    let out = run_on_source(
        &Command::Classify {
            file: String::new(),
        },
        &src,
    )
    .unwrap();
    assert!(out.contains("strongly stable       : true"), "{out}");
}

#[test]
fn bounded_dataset_uses_bounded_strategy() {
    let src = dataset("bounded_s8.dl");
    let out = run_on_source(&run_cmd(true, None), &src).unwrap();
    assert!(out.contains("[Bounded]"), "{out}");
    assert!(!out.contains("DISAGREES"), "{out}");
}

#[test]
fn mixed_dataset_uses_magic_strategy() {
    let src = dataset("mixed_s12.dl");
    let out = run_on_source(&run_cmd(true, None), &src).unwrap();
    assert!(out.contains("[Magic]"), "{out}");
    assert!(!out.contains("DISAGREES"), "{out}");
}

/// Every dataset, under every `--engine` mode (each with `--check` against
/// the fixpoint oracle), must produce the exact same answer lines.
#[test]
fn every_engine_agrees_on_every_dataset() {
    for name in ["transitive_closure.dl", "bounded_s8.dl", "mixed_s12.dl"] {
        let src = dataset(name);
        let mut answer_sets: Vec<Vec<String>> = Vec::new();
        for engine in [
            EngineChoice::Oracle,
            EngineChoice::Indexed,
            EngineChoice::Parallel,
        ] {
            let out = run_on_source(&run_cmd(true, Some(engine)), &src)
                .unwrap_or_else(|e| panic!("{name} with {}: {e}", engine.label()));
            assert!(
                out.contains(&format!("engine:{}", engine.label())),
                "{name}: {out}"
            );
            assert!(!out.contains("DISAGREES"), "{name}: {out}");
            // Answer lines only — the [engine:…] headers legitimately differ.
            let answers: Vec<String> = out
                .lines()
                .filter(|l| !l.starts_with("?-"))
                .map(String::from)
                .collect();
            answer_sets.push(answers);
        }
        assert_eq!(answer_sets[0], answer_sets[1], "{name}: oracle vs indexed");
        assert_eq!(answer_sets[0], answer_sets[2], "{name}: oracle vs parallel");
    }
}

/// The engines report the paper-class-selected kernel per dataset.
#[test]
fn engine_reports_class_selected_kernels() {
    for (name, kernel) in [
        ("transitive_closure.dl", "kernel:frontier"),
        ("bounded_s8.dl", "kernel:unroll(2)"),
    ] {
        let src = dataset(name);
        let out = run_on_source(&run_cmd(false, Some(EngineChoice::Indexed)), &src).unwrap();
        assert!(out.contains(kernel), "{name}: {out}");
    }
}

#[test]
fn mixed_dataset_plan_shows_paper_formula() {
    let src = dataset("mixed_s12.dl");
    let out = run_on_source(
        &Command::Plan {
            file: String::new(),
            forms: vec!["dvv".into()],
        },
        &src,
    )
    .unwrap();
    // The paper's Example 14 plan shape.
    assert!(out.contains("A-C-B"), "{out}");
    assert!(out.contains("D^(k+1)"), "{out}");
    assert!(out.contains("dvv → ddv"), "{out}");
}

#[test]
fn figures_render_for_every_dataset() {
    for name in ["transitive_closure.dl", "bounded_s8.dl", "mixed_s12.dl"] {
        let src = dataset(name);
        let out = run_on_source(
            &Command::Figure {
                file: String::new(),
                levels: 2,
                dot: false,
            },
            &src,
        )
        .unwrap();
        assert!(out.contains("--- G1 ---"), "{name}: {out}");
        assert!(out.contains("--- G2 ---"), "{name}: {out}");
    }
}
