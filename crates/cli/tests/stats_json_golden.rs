//! Golden-file pin of the `--stats-json` wire shape.
//!
//! `run --stats-json` prints a serialized [`recurs_engine::Saturation`] and
//! `batch --stats-json` (and the serve protocol's `!stats`) a serialized
//! [`recurs_serve::ServiceStats`]. Downstream tooling parses these lines, so
//! their key names, nesting, and ordering are a public contract: this test
//! serializes fully deterministic instances and compares the pretty JSON
//! byte-for-byte against checked-in golden files.
//!
//! If a change to the shape is *intentional*, regenerate the goldens with
//! `UPDATE_GOLDENS=1 cargo test -p recurs-cli --test stats_json_golden` and
//! review the diff like any other API change.

use recurs_datalog::govern::{Outcome, TruncationReason};
use recurs_engine::storage::IndexCounters;
use recurs_engine::{EngineStats, IterationStats, KernelKind, Saturation};
use recurs_serve::{CacheCounters, ServiceStats};
use std::path::Path;
use std::time::Duration;

/// Compares `actual` against the golden file at `tests/golden/<name>`,
/// rewriting the golden instead when `UPDATE_GOLDENS` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, want,
        "serialized shape of {name} changed; if intentional, regenerate with \
         UPDATE_GOLDENS=1 and review the diff"
    );
}

/// A fully deterministic engine run record: every field populated with a
/// distinct value so a dropped or renamed key cannot hide behind a default.
fn engine_saturation(outcome: Outcome) -> Saturation {
    Saturation {
        outcome,
        stats: EngineStats {
            kernel: Some(KernelKind::Frontier),
            threads: 2,
            iterations: vec![
                IterationStats {
                    delta_in: 0,
                    derived: 4,
                    new_tuples: 4,
                    duration: Duration::from_micros(120),
                    busy: Duration::from_micros(120),
                    workers: 1,
                },
                IterationStats {
                    delta_in: 4,
                    derived: 5,
                    new_tuples: 3,
                    duration: Duration::from_micros(80),
                    busy: Duration::from_micros(150),
                    workers: 2,
                },
            ],
            tuples_derived: 7,
            index: IndexCounters {
                builds: 1,
                updates: 2,
            },
            probes: 9,
            probe_hits: 6,
            worker_panics: 1,
            degraded_iterations: 1,
        },
    }
}

#[test]
fn engine_saturation_shape_is_pinned() {
    let json = serde::json::to_string_pretty(&engine_saturation(Outcome::Complete));
    assert_matches_golden("engine_saturation.json", &json);
}

#[test]
fn truncated_outcome_shape_is_pinned() {
    // The truncation arm adds the human-readable reason string; pin it too
    // so `"truncation"` never silently becomes a code or an object.
    let json = serde::json::to_string(&Outcome::Truncated(TruncationReason::TupleCeiling));
    assert_eq!(json, r#"{"complete":false,"truncation":"tuple ceiling"}"#);
}

#[test]
fn service_stats_shape_is_pinned() {
    let stats = ServiceStats {
        queries: 11,
        complete: 9,
        truncated: 2,
        errors: 1,
        kernel_bounded: 3,
        kernel_magic: 5,
        kernel_saturate: 3,
        kernel_materialized: 2,
        queue_wait_us: 420,
        eval_us: 6400,
        tuples_derived: 210,
        cache: CacheCounters {
            hits: 4,
            misses: 7,
            insertions: 6,
            evictions: 1,
            invalidations: 2,
            patched: 5,
        },
        snapshot_version: 3,
        snapshot_updates: 2,
        updates_unchanged: 1,
    };
    let json = serde::json::to_string_pretty(&stats);
    assert_matches_golden("service_stats.json", &json);
}

/// The golden shape must agree with what the real CLI emits: every
/// top-level key pinned above appears in a live `run --stats-json` line.
#[test]
fn live_stats_json_carries_the_pinned_keys() {
    let golden = serde::json::to_string_pretty(&engine_saturation(Outcome::Complete));
    let out = recurs_cli::run_on_source(
        &recurs_cli::Command::Run {
            file: String::new(),
            check: false,
            engine: Some(recurs_cli::EngineChoice::Indexed),
            threads: 1,
            timeout_ms: None,
            max_tuples: None,
            max_iterations: None,
            stats_json: true,
            trace: None,
            metrics: false,
            why: None,
            why_depth: recurs_ivm::DEFAULT_WHY_DEPTH,
        },
        "P(x, y) :- E(x, y).\nP(x, y) :- A(x, z), P(z, y).\nA(1, 2).\nA(2, 3).\nE(1, 2).\nE(2, 3).\n?- P(1, y).",
    )
    .expect("run succeeds");
    let live = out
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("a JSON stats line");
    for key in golden
        .lines()
        .filter_map(|l| l.trim().strip_prefix('"').and_then(|r| r.split_once('"')))
        .map(|(key, _)| key)
    {
        assert!(
            live.contains(&format!("\"{key}\"")),
            "live --stats-json is missing pinned key {key:?}: {live}"
        );
    }
}
