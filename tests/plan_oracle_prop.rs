//! The central equivalence property: for random valid formulas, random
//! databases, and random query forms, the compiled plan — whichever strategy
//! the planner picks — returns exactly the semi-naive fixpoint's answers.

use proptest::prelude::*;
use recurs_core::oracle::compare;
use recurs_workload::queries::{random_database, random_query};
use recurs_workload::rules::{random_linear_recursion, RuleConfig};

fn config() -> RuleConfig {
    RuleConfig {
        min_dim: 1,
        max_dim: 3,
        max_extra_atoms: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn plans_agree_with_fixpoint(
        rule_seed in 0u64..100_000,
        db_seed in 0u64..1_000,
        query_seed in 0u64..1_000,
        bound_prob in prop::sample::select(vec![0u32, 35, 65, 100]),
    ) {
        let lr = random_linear_recursion(rule_seed, config());
        // Small domain so random constants hit data and chains connect.
        let db = random_database(&lr, 20, 5, db_seed);
        let query = random_query(&lr, 5, bound_prob, query_seed);
        let report = compare(&lr, &db, &query)
            .unwrap_or_else(|e| panic!("planning failed for {}: {e}", lr.recursive_rule));
        prop_assert!(
            report.agrees(),
            "strategy {:?} diverged for {} on query {} (seeds {rule_seed}/{db_seed}/{query_seed})\nplan: {}\noracle: {}",
            report.strategy,
            lr.recursive_rule,
            query,
            report.plan_answers,
            report.oracle_answers,
        );
    }

    /// Denser databases exercise the cyclic-data paths of the counting
    /// strategy (frontier periodicity) harder.
    #[test]
    fn plans_agree_on_dense_cyclic_data(
        rule_seed in 0u64..50_000,
        db_seed in 0u64..500,
    ) {
        let lr = random_linear_recursion(rule_seed, config());
        let db = random_database(&lr, 40, 3, db_seed); // tiny domain → cycles
        for (i, bound_prob) in [0u32, 50, 100].into_iter().enumerate() {
            let query = random_query(&lr, 3, bound_prob, db_seed ^ (i as u64));
            let report = compare(&lr, &db, &query).unwrap();
            prop_assert!(
                report.agrees(),
                "strategy {:?} diverged for {} on {} (dense, seeds {rule_seed}/{db_seed})",
                report.strategy,
                lr.recursive_rule,
                query,
            );
        }
    }
}
