//! Structural regeneration of the paper's Figures 1–6: every vertex and
//! edge the figures draw is asserted on the mechanically constructed
//! I-graphs and resolution graphs.

use recurs_datalog::parser::parse_rule;
use recurs_datalog::Symbol;
use recurs_igraph::build::{igraph_of, resolution_graph};
use recurs_igraph::dot::{to_ascii, to_dot};
use recurs_igraph::graph::IGraph;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn has_directed(g: &IGraph, from: &str, to: &str) -> bool {
    g.directed_edges()
        .any(|(_, e)| g.var(e.a) == s(from) && g.var(e.b) == s(to))
}

fn has_undirected(g: &IGraph, a: &str, b: &str, label: &str) -> bool {
    g.undirected_edges().any(|(_, e)| {
        e.label == s(label)
            && ((g.var(e.a) == s(a) && g.var(e.b) == s(b))
                || (g.var(e.a) == s(b) && g.var(e.b) == s(a)))
    })
}

#[test]
fn figure_1a() {
    // s1a: P(x,y) :- A(x,z), P(z,y).
    let g = igraph_of(&parse_rule("P(x, y) :- A(x, z), P(z, y).").unwrap());
    assert_eq!(g.vertex_count(), 3);
    assert!(has_directed(&g, "x", "z"));
    assert!(has_directed(&g, "y", "y"));
    assert!(has_undirected(&g, "x", "z", "A"));
    assert_eq!(g.edge_count(), 3);
}

#[test]
fn figure_1b() {
    // s1b: P(x,y,z) :- A(x,y), P(u,z,v), B(u,v).
    let g = igraph_of(&parse_rule("P(x, y, z) :- A(x, y), P(u, z, v), B(u, v).").unwrap());
    assert_eq!(g.vertex_count(), 5);
    assert!(has_directed(&g, "x", "u"));
    assert!(has_directed(&g, "y", "z"));
    assert!(has_directed(&g, "z", "v"));
    assert!(has_undirected(&g, "x", "y", "A"));
    assert!(has_undirected(&g, "u", "v", "B"));
    assert_eq!(g.edge_count(), 5);
}

#[test]
fn figure_2_resolution_graphs_of_s2a() {
    let rule = parse_rule("P(x, y) :- A(x, z), P(z, u), B(u, y).").unwrap();

    // Figure 2(a): the I-graph — x→z, y→u, A(x,z), B(u,y).
    let g1 = resolution_graph(&rule, 1);
    assert!(has_directed(&g1.graph, "x", "z"));
    assert!(has_directed(&g1.graph, "y", "u"));
    assert!(has_undirected(&g1.graph, "x", "z", "A"));
    assert!(has_undirected(&g1.graph, "u", "y", "B"));

    // Figure 2(c): G2 — appends the renamed copy; 6 vertices, all four
    // original arrows retained plus two new ones.
    let g2 = resolution_graph(&rule, 2);
    assert_eq!(g2.graph.vertex_count(), 6);
    assert_eq!(g2.graph.directed_edges().count(), 4);
    assert_eq!(g2.graph.undirected_edges().count(), 4);
    // The retained first-copy arrows:
    assert!(has_directed(&g2.graph, "x", "z"));
    assert!(has_directed(&g2.graph, "y", "u"));
    // The second copy hangs off z and u: z → z′ and u → u′ for fresh z′, u′.
    let z = g2.graph.vertex_of(s("z")).unwrap();
    let u = g2.graph.vertex_of(s("u")).unwrap();
    let z_succ = g2
        .graph
        .directed_edges()
        .find(|(_, e)| e.a == z)
        .map(|(_, e)| e.b)
        .expect("z has an outgoing arrow in G2");
    let u_succ = g2
        .graph
        .directed_edges()
        .find(|(_, e)| e.a == u)
        .map(|(_, e)| e.b)
        .expect("u has an outgoing arrow in G2");
    assert_ne!(g2.graph.var(z_succ), s("u"), "fresh variable expected");
    assert_ne!(g2.graph.var(u_succ), s("y"), "fresh variable expected");
    // "The weight from x to z1 is two": the directed path x→z→z′ exists.
    assert!(has_directed(&g2.graph, "x", "z"));
    // (z→z′ verified above; path weight 1 + 1 = 2.)

    // Figure 2(d): the 2nd expansion viewed as a formula by itself — its own
    // I-graph has weight-2 connections through the fresh middle variables.
    let g2d = igraph_of(&g2.expansion);
    assert_eq!(g2d.directed_edges().count(), 2);
    assert_eq!(g2d.undirected_edges().count(), 4);
}

#[test]
fn figure_3_s8_igraph_and_bound() {
    let rule =
        parse_rule("P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), P(z, y1, z1, u1).").unwrap();
    let g = igraph_of(&rule);
    assert!(has_directed(&g, "x", "z"));
    assert!(has_directed(&g, "y", "y1"));
    assert!(has_directed(&g, "z", "z1"));
    assert!(has_directed(&g, "u", "u1"));
    assert!(has_undirected(&g, "x", "y", "A"));
    assert!(has_undirected(&g, "y1", "u", "B"));
    assert!(has_undirected(&g, "z1", "u1", "C"));
    // The figure's point: max path weight 2 (x→z→z1), the rank bound.
    assert_eq!(recurs_igraph::max_path_weight(&g), 2);
}

#[test]
fn figure_4_s9_resolution_graphs() {
    let rule = parse_rule("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).").unwrap();
    let g1 = resolution_graph(&rule, 1);
    assert!(has_directed(&g1.graph, "x", "u"));
    assert!(has_directed(&g1.graph, "y", "z"));
    assert!(has_directed(&g1.graph, "z", "v"));
    let g2 = resolution_graph(&rule, 2);
    // G2 (Figure 4(b)): the copy's head is P(u,z,v) and its recursive atom
    // instantiates to P(u′, v, v′) — the middle position re-enters the
    // existing vertex v (z → v), so only u′ and v′ are fresh.
    assert_eq!(g2.graph.directed_edges().count(), 6);
    assert_eq!(g2.graph.undirected_edges().count(), 2 * 2);
    assert_eq!(g2.graph.vertex_count(), 5 + 2);
    assert!(has_directed(&g2.graph, "z", "v"));
}

#[test]
fn figure_5_s11_resolution_graphs() {
    let rule = parse_rule("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).").unwrap();
    let g1 = resolution_graph(&rule, 1);
    assert!(has_directed(&g1.graph, "x", "x1"));
    assert!(has_directed(&g1.graph, "y", "y1"));
    assert!(has_undirected(&g1.graph, "x1", "y1", "C"));
    let g2 = resolution_graph(&rule, 2);
    assert_eq!(g2.graph.vertex_count(), 6);
    assert_eq!(g2.graph.directed_edges().count(), 4);
    assert_eq!(g2.graph.undirected_edges().count(), 6);
    // x1 and y1 each grow an outgoing arrow in the second copy.
    let x1 = g2.graph.vertex_of(s("x1")).unwrap();
    let y1 = g2.graph.vertex_of(s("y1")).unwrap();
    assert!(g2.graph.directed_edges().any(|(_, e)| e.a == x1));
    assert!(g2.graph.directed_edges().any(|(_, e)| e.a == y1));
}

#[test]
fn figure_6_s12_resolution_graphs() {
    let rule = parse_rule("P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), P(u, v, w).").unwrap();
    let g1 = resolution_graph(&rule, 1);
    assert_eq!(g1.graph.vertex_count(), 6);
    assert_eq!(g1.graph.directed_edges().count(), 3);
    assert_eq!(g1.graph.undirected_edges().count(), 4);
    let g2 = resolution_graph(&rule, 2);
    assert_eq!(g2.graph.directed_edges().count(), 6);
    assert_eq!(g2.graph.undirected_edges().count(), 8);
}

#[test]
fn rendering_is_complete_and_stable() {
    // Every figure renders to DOT and ASCII without loss.
    for src in [
        "P(x, y) :- A(x, z), P(z, y).",
        "P(x, y, z) :- A(x, y), P(u, z, v), B(u, v).",
        "P(x, y) :- A(x, z), P(z, u), B(u, y).",
        "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), P(z, y1, z1, u1).",
        "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).",
        "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).",
        "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), P(u, v, w).",
    ] {
        let g = igraph_of(&parse_rule(src).unwrap());
        let ascii = to_ascii(&g);
        assert_eq!(ascii.lines().count(), g.edge_count());
        let dot = to_dot(&g, "figure");
        for (_, var) in g.vertices() {
            assert!(dot.contains(&format!("\"{var}\"")), "{var} missing in DOT");
        }
    }
}
