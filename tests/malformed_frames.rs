//! Malformed-frame corpus: every byte sequence here is something a confused
//! or hostile client could write to the TCP front end, and every one must
//! come back as a typed error reply or a clean close — never a panic, never
//! a hung connection, never a poisoned server. Companion to
//! `malformed_inputs.rs`, one layer down the stack.

use recurs_datalog::database::Database;
use recurs_datalog::parser::parse_program;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_net::frame::{read_frame, write_frame, FrameError};
use recurs_net::proto::json_str_field;
use recurs_net::{Client, NetConfig, NetServer, ShutdownHandle};
use recurs_serve::{QueryService, ServeConfig};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Frames above this size are rejected in these tests (small, so the
/// oversized cases don't need megabyte payloads).
const MAX_FRAME: usize = 4096;

fn tc_service() -> Arc<QueryService> {
    let lr = validate_with_generic_exit(
        &parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").expect("parses"),
    )
    .expect("validates");
    let mut db = Database::new();
    db.insert_relation("A", recurs_workload::graphs::chain(16));
    db.insert_relation("E", recurs_workload::graphs::chain(16));
    Arc::new(QueryService::new(lr, db, ServeConfig::default()))
}

/// A running server plus its address; dropped via an explicit drain so a
/// wedged connection handler fails the test instead of leaking.
struct Server {
    addr: String,
    handle: ShutdownHandle,
    join: std::thread::JoinHandle<std::io::Result<recurs_net::DrainReport>>,
}

fn spawn() -> Server {
    let config = NetConfig {
        max_frame_len: MAX_FRAME,
        tick: Duration::from_millis(2),
        drain_linger: Duration::from_millis(40),
        ..NetConfig::default()
    };
    let server = NetServer::bind(tc_service(), "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let (handle, join) = server.spawn();
    Server { addr, handle, join }
}

impl Server {
    /// Proves the server still answers real queries, then drains it and
    /// asserts the drain was clean (no wedged handler, nothing forced).
    fn assert_alive_and_shut_down(self) {
        let mut probe = Client::connect(&self.addr, Duration::from_secs(5)).expect("probe connect");
        let reply = probe.roundtrip("?- P(1, y).").expect("probe query");
        assert_eq!(json_str_field(&reply, "type"), Some("answers"), "{reply}");
        drop(probe);
        self.handle.drain();
        let report = self.join.join().expect("server thread").expect("run ok");
        assert!(!report.forced, "malformed input must not wedge the drain");
    }
}

/// A raw TCP connection with timeouts, so a server that stops responding
/// fails the test quickly instead of hanging it.
fn raw_connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .expect("write timeout");
    stream
}

fn reply_of(stream: &mut TcpStream) -> String {
    let payload = read_frame(stream, MAX_FRAME).expect("a framed reply");
    String::from_utf8(payload).expect("replies are UTF-8")
}

#[test]
fn oversized_length_prefix_is_a_typed_reply_then_a_clean_close() {
    let server = spawn();
    let mut stream = raw_connect(&server.addr);
    stream
        .write_all(&((MAX_FRAME as u32) + 1).to_be_bytes())
        .expect("prefix");
    let reply = reply_of(&mut stream);
    assert_eq!(json_str_field(&reply, "type"), Some("protocol"), "{reply}");
    assert!(reply.contains("\"ok\":false"), "{reply}");
    // The claimed length cannot be resynchronized: the server closes.
    assert!(
        matches!(read_frame(&mut stream, MAX_FRAME), Err(FrameError::Closed)),
        "an oversized claim must close the connection"
    );
    server.assert_alive_and_shut_down();
}

#[test]
fn http_garbage_reads_as_an_absurd_length_and_is_rejected() {
    // "GET " as a big-endian length claims ~1.2 GB: typed reply, close.
    let server = spawn();
    let mut stream = raw_connect(&server.addr);
    stream
        .write_all(b"GET / HTTP/1.1\r\nHost: example\r\n\r\n")
        .expect("write garbage");
    let reply = reply_of(&mut stream);
    assert_eq!(json_str_field(&reply, "type"), Some("protocol"), "{reply}");
    assert!(
        matches!(read_frame(&mut stream, MAX_FRAME), Err(FrameError::Closed)),
        "garbage framing must close the connection"
    );
    server.assert_alive_and_shut_down();
}

#[test]
fn truncated_frame_then_disconnect_leaves_the_server_healthy() {
    let server = spawn();
    {
        let mut stream = raw_connect(&server.addr);
        stream.write_all(&100u32.to_be_bytes()).expect("prefix");
        stream.write_all(b"?- P(1, ").expect("partial payload");
        stream.flush().expect("flush");
        // Vanish mid-frame.
    }
    server.assert_alive_and_shut_down();
}

#[test]
fn non_utf8_payload_is_a_typed_error_and_the_connection_survives() {
    let server = spawn();
    let mut stream = raw_connect(&server.addr);
    write_frame(&mut stream, &[0xff, 0xfe, 0x00, 0x9c, 0x41]).expect("write frame");
    let reply = reply_of(&mut stream);
    assert_eq!(json_str_field(&reply, "type"), Some("protocol"), "{reply}");
    assert!(reply.contains("\"ok\":false"), "{reply}");
    // Frame boundaries are intact, so the same connection keeps working.
    write_frame(&mut stream, b"?- P(1, y).").expect("write query");
    let reply = reply_of(&mut stream);
    assert_eq!(json_str_field(&reply, "type"), Some("answers"), "{reply}");
    server.assert_alive_and_shut_down();
}

#[test]
fn empty_frame_gets_exactly_one_reply_and_no_hang() {
    let server = spawn();
    let mut stream = raw_connect(&server.addr);
    write_frame(&mut stream, b"").expect("write empty frame");
    // The exactly-one-reply invariant holds even for a blank request.
    let first = reply_of(&mut stream);
    assert!(first.starts_with('{'), "{first}");
    write_frame(&mut stream, b"?- P(1, y).").expect("write query");
    let reply = reply_of(&mut stream);
    assert_eq!(json_str_field(&reply, "type"), Some("answers"), "{reply}");
    server.assert_alive_and_shut_down();
}

#[test]
fn garbage_after_a_valid_frame_is_contained_to_that_connection() {
    let server = spawn();
    let mut stream = raw_connect(&server.addr);
    write_frame(&mut stream, b"?- P(1, y).").expect("write query");
    let reply = reply_of(&mut stream);
    assert_eq!(json_str_field(&reply, "type"), Some("answers"), "{reply}");
    // Interleave raw garbage where the next length prefix belongs.
    stream
        .write_all(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02])
        .expect("write garbage");
    let reply = reply_of(&mut stream);
    assert_eq!(json_str_field(&reply, "type"), Some("protocol"), "{reply}");
    assert!(
        matches!(read_frame(&mut stream, MAX_FRAME), Err(FrameError::Closed)),
        "desynchronized framing must close the connection"
    );
    server.assert_alive_and_shut_down();
}

#[test]
fn malformed_trace_directives_are_typed_errors_and_never_hang() {
    let server = spawn();
    let mut stream = raw_connect(&server.addr);
    // Every corpus entry gets exactly one typed protocol error on the same
    // surviving connection: oversized ids, non-hex ids, empty ids,
    // duplicates, and bad combinations with @deadline.
    let corpus: &[&[u8]] = &[
        b"@trace=00112233445566778 ?- P(1, y).", // 17 hex digits: too long
        b"@trace=not-hex ?- P(1, y).",
        b"@trace= ?- P(1, y).",
        b"@trace=ff @trace=ff ?- P(1, y).",
        b"@trace=ff @deadline=oops ?- P(1, y).",
        b"@deadline=100 @trace=xyz ?- P(1, y).",
        b"@trace=\xc3\x28 ?- P(1, y).", // invalid UTF-8 inside the id
    ];
    for payload in corpus {
        write_frame(&mut stream, payload).expect("write frame");
        let reply = reply_of(&mut stream);
        assert_eq!(
            json_str_field(&reply, "type"),
            Some("protocol"),
            "payload {payload:?} got {reply}"
        );
        assert!(reply.contains("\"ok\":false"), "{reply}");
    }
    // A well-formed traced query on the same connection still works, and
    // the reply echoes the id zero-padded to 16 hex digits.
    write_frame(&mut stream, b"@trace=beef @deadline=5000 ?- P(1, y).").expect("write query");
    let reply = reply_of(&mut stream);
    assert_eq!(json_str_field(&reply, "type"), Some("answers"), "{reply}");
    assert_eq!(
        json_str_field(&reply, "trace"),
        Some("000000000000beef"),
        "{reply}"
    );
    server.assert_alive_and_shut_down();
}

#[test]
fn a_burst_of_malformed_connections_does_not_exhaust_the_server() {
    let server = spawn();
    for round in 0..10 {
        let mut stream = raw_connect(&server.addr);
        match round % 3 {
            0 => stream.write_all(&u32::MAX.to_be_bytes()).expect("write"),
            1 => {
                stream.write_all(&8u32.to_be_bytes()).expect("write");
                stream.write_all(b"ab").expect("write"); // truncated
            }
            _ => write_frame(&mut stream, &[0x80, 0x81]).expect("write"),
        }
        // Drop without reading: the server must reap each connection.
    }
    server.assert_alive_and_shut_down();
}
