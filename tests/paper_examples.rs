//! End-to-end reproduction of every worked example of the paper (s1–s12):
//! classification, bounds, transformations, plans, and execution checked
//! against the semi-naive oracle for every query form.

use recurs_core::classify::{Classification, FormulaClass, OneDirectionalSubclass};
use recurs_core::oracle::assert_equivalent;
use recurs_core::plan::{plan_query, StrategyKind};
use recurs_datalog::parser::parse_program;
use recurs_datalog::relation::{tuple_u64, Relation};
use recurs_datalog::rule::LinearRecursion;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::Database;
use recurs_workload::all_query_atoms;

fn lr(src: &str) -> LinearRecursion {
    validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
}

/// Checks every query form (with constants drawn from the database's domain)
/// against the oracle.
fn check_all_forms(f: &LinearRecursion, db: &Database, constants: &[u64]) {
    for q in all_query_atoms(f, constants) {
        assert_equivalent(f, db, &q);
    }
}

#[test]
fn s1a_transitive_closure() {
    let f = lr("P(x, y) :- A(x, z), P(z, y).");
    let c = Classification::of(&f.recursive_rule);
    assert_eq!(
        c.class,
        FormulaClass::OneDirectional(OneDirectionalSubclass::A5)
    );
    assert!(c.is_strongly_stable());

    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4), (2, 5)]));
    db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3), (3, 4), (2, 5)]));
    check_all_forms(&f, &db, &[1, 3]);
}

#[test]
fn s1b_example_1() {
    let f = lr("P(x, y, z) :- A(x, y), P(u, z, v), B(u, v).");
    let c = Classification::of(&f.recursive_rule);
    // Same topology as s9: a single independent multi-directional cycle of
    // non-zero weight — class C.
    assert_eq!(c.class, FormulaClass::Unbounded);

    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (3, 4)]));
    db.insert_relation("B", Relation::from_pairs([(5, 6), (6, 5)]));
    db.insert_relation(
        "E",
        Relation::from_tuples(3, [tuple_u64([5, 7, 6]), tuple_u64([6, 1, 5])]),
    );
    check_all_forms(&f, &db, &[1, 7]);
}

#[test]
fn s2a_example_2_expansion() {
    // The graph-construction example; also execute it (it is stable: two
    // disjoint unit rotational cycles).
    let f = lr("P(x, y) :- A(x, z), P(z, u), B(u, y).");
    let c = Classification::of(&f.recursive_rule);
    assert!(c.is_strongly_stable());
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
    db.insert_relation("B", Relation::from_pairs([(11, 12), (12, 13)]));
    db.insert_relation("E", Relation::from_pairs([(3, 11), (2, 12)]));
    check_all_forms(&f, &db, &[1, 13]);
}

#[test]
fn s3_example_3_stable() {
    let f = lr("P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).");
    let c = Classification::of(&f.recursive_rule);
    assert_eq!(
        c.class,
        FormulaClass::OneDirectional(OneDirectionalSubclass::A1)
    );

    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
    db.insert_relation("B", Relation::from_pairs([(4, 5), (5, 6), (6, 4)]));
    db.insert_relation("C", Relation::from_pairs([(7, 8), (8, 9), (9, 7)]));
    db.insert_relation(
        "E",
        Relation::from_tuples(3, [tuple_u64([3, 6, 7]), tuple_u64([1, 4, 8])]),
    );
    // The paper's representative query P(a, b, Z) uses the counting strategy.
    let q = recurs_datalog::parser::parse_atom("P('1', '4', z)").unwrap();
    let plan = plan_query(&f, &q);
    assert_eq!(plan.strategy, StrategyKind::Counting);
    check_all_forms(&f, &db, &[1, 4]);
}

#[test]
fn s4_example_4_nonunit_rotational() {
    let f = lr("P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), P(y1, y2, y3).");
    let c = Classification::of(&f.recursive_rule);
    assert_eq!(
        c.class,
        FormulaClass::OneDirectional(OneDirectionalSubclass::A3)
    );
    assert_eq!(c.stabilization_period(), Some(3));

    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4), (4, 1)]));
    db.insert_relation("B", Relation::from_pairs([(1, 2), (2, 3), (3, 4), (4, 2)]));
    db.insert_relation("C", Relation::from_pairs([(1, 2), (2, 3), (3, 4), (2, 1)]));
    db.insert_relation(
        "E",
        Relation::from_tuples(3, [tuple_u64([2, 3, 1]), tuple_u64([4, 4, 4])]),
    );
    check_all_forms(&f, &db, &[2, 3]);
}

#[test]
fn s5_example_5_permutational() {
    let f = lr("P(x, y, z) :- P(y, z, x).");
    let c = Classification::of(&f.recursive_rule);
    assert!(c.is_bounded());
    assert_eq!(c.rank_bound(), Some(2));

    let mut db = Database::new();
    db.insert_relation(
        "E",
        Relation::from_tuples(3, [tuple_u64([1, 2, 3]), tuple_u64([4, 4, 5])]),
    );
    check_all_forms(&f, &db, &[1, 4]);
}

#[test]
fn s6_example_6_three_permutational_cycles() {
    let f = lr("P(x, y, z, u, v, w) :- P(z, y, u, x, w, v).");
    let c = Classification::of(&f.recursive_rule);
    assert_eq!(c.stabilization_period(), Some(6));
    assert_eq!(c.rank_bound(), Some(5));

    let mut db = Database::new();
    db.insert_relation(
        "E",
        Relation::from_tuples(
            6,
            [tuple_u64([1, 2, 3, 4, 5, 6]), tuple_u64([2, 2, 2, 3, 3, 3])],
        ),
    );
    // 2^6 forms is 64 oracle runs — keep constants small.
    check_all_forms(&f, &db, &[1, 2]);
}

#[test]
fn s7_example_7_disjoint_combination() {
    let f = lr("P(x, y, z, u, w, s, v) :- A(x, t), P(t, z, y, w, s, r, v), B(u, r).");
    let c = Classification::of(&f.recursive_rule);
    assert_eq!(
        c.class,
        FormulaClass::OneDirectional(OneDirectionalSubclass::A5)
    );
    assert_eq!(c.stabilization_period(), Some(6));

    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 1)]));
    db.insert_relation("B", Relation::from_pairs([(1, 2), (2, 1)]));
    db.insert_relation(
        "E",
        Relation::from_tuples(7, [tuple_u64([1, 2, 1, 2, 1, 2, 1])]),
    );
    // 2^7 forms is large; check a representative selection instead.
    use recurs_datalog::parser::parse_atom;
    for q in [
        "P(x, y, z, u, w, s, v)",
        "P('1', y, z, u, w, s, v)",
        "P(x, '1', z, u, w, s, v)",
        "P('2', '1', '2', u, w, s, v)",
        "P('1', '2', '1', '2', '1', '2', '1')",
    ] {
        assert_equivalent(&f, &db, &parse_atom(q).unwrap());
    }
}

#[test]
fn s8_example_8_bounded() {
    let f = lr("P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), P(z, y1, z1, u1).");
    let c = Classification::of(&f.recursive_rule);
    assert_eq!(c.class, FormulaClass::Bounded);
    assert_eq!(c.rank_bound(), Some(2));

    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4)]));
    db.insert_relation("B", Relation::from_pairs([(2, 5), (3, 6), (4, 7)]));
    db.insert_relation("C", Relation::from_pairs([(8, 9), (9, 8), (2, 3)]));
    db.insert_relation(
        "E",
        Relation::from_tuples(4, [tuple_u64([2, 2, 8, 9]), tuple_u64([3, 3, 9, 8])]),
    );
    check_all_forms(&f, &db, &[2, 8]);
}

#[test]
fn s9_example_9_unbounded() {
    let f = lr("P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).");
    let c = Classification::of(&f.recursive_rule);
    assert_eq!(c.class, FormulaClass::Unbounded);

    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (5, 5)]));
    db.insert_relation("B", Relation::from_pairs([(6, 7), (7, 6)]));
    db.insert_relation(
        "E",
        Relation::from_tuples(3, [tuple_u64([6, 9, 7]), tuple_u64([1, 8, 2])]),
    );
    check_all_forms(&f, &db, &[1, 9]);
}

#[test]
fn s10_example_10_no_nontrivial_cycle() {
    let f = lr("P(x, y) :- B(y), C(x, y1), P(x1, y1).");
    let c = Classification::of(&f.recursive_rule);
    assert_eq!(c.class, FormulaClass::NoNontrivialCycles);
    assert_eq!(c.rank_bound(), Some(2));

    let mut db = Database::new();
    db.insert_relation(
        "B",
        Relation::from_tuples(1, [tuple_u64([5]), tuple_u64([6])]),
    );
    db.insert_relation("C", Relation::from_pairs([(1, 7), (2, 8), (3, 7)]));
    db.insert_relation("E", Relation::from_pairs([(9, 7), (4, 8), (2, 5)]));
    check_all_forms(&f, &db, &[1, 5]);
}

#[test]
fn s11_example_11_dependent() {
    let f = lr("P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).");
    let c = Classification::of(&f.recursive_rule);
    assert_eq!(c.class, FormulaClass::Dependent);

    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
    db.insert_relation("B", Relation::from_pairs([(11, 12), (12, 13), (13, 11)]));
    db.insert_relation("C", Relation::from_pairs([(2, 12), (3, 13), (1, 11)]));
    db.insert_relation("E", Relation::from_pairs([(2, 12), (1, 11), (9, 9)]));
    // The paper's query form P(d, v) plus every other form.
    check_all_forms(&f, &db, &[1, 12]);
}

#[test]
fn s12_example_14_mixed() {
    let f = lr("P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), P(u, v, w).");
    let c = Classification::of(&f.recursive_rule);
    assert_eq!(c.class, FormulaClass::Mixed);

    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
    db.insert_relation("B", Relation::from_pairs([(11, 12), (12, 13), (13, 11)]));
    db.insert_relation("C", Relation::from_pairs([(2, 12), (3, 13), (1, 11)]));
    db.insert_relation("D", Relation::from_pairs([(21, 22), (22, 23), (23, 21)]));
    db.insert_relation(
        "E",
        Relation::from_tuples(3, [tuple_u64([2, 12, 21]), tuple_u64([3, 13, 22])]),
    );
    check_all_forms(&f, &db, &[1, 21]);
}

#[test]
fn remark_compression_formula() {
    // The Remark's example: P(x,y) :- A(x,u), B(x,z), C(z,u), P(u,y) —
    // compresses to ABC(x,u), stable.
    let f = lr("P(x, y) :- A(x, u), B(x, z), C(z, u), P(u, y).");
    assert!(Classification::of(&f.recursive_rule).is_strongly_stable());
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
    db.insert_relation("B", Relation::from_pairs([(1, 5), (2, 6)]));
    db.insert_relation("C", Relation::from_pairs([(5, 2), (6, 3)]));
    db.insert_relation("E", Relation::from_pairs([(2, 9), (3, 8)]));
    check_all_forms(&f, &db, &[1, 9]);
}

#[test]
fn theorem1_counterexample_formula() {
    // P(x,y) :- A(x,z), P(y,z): the uniform length-two cycle from Theorem
    // 1's proof — unstable but transformable (A3, period 2).
    let f = lr("P(x, y) :- A(x, z), P(y, z).");
    let c = Classification::of(&f.recursive_rule);
    assert!(!c.is_strongly_stable());
    assert_eq!(c.stabilization_period(), Some(2));
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 2)]));
    db.insert_relation("E", Relation::from_pairs([(1, 2), (2, 3), (3, 2)]));
    check_all_forms(&f, &db, &[1, 2]);
}
