//! Deterministic hard cases for each executable strategy — the situations
//! most likely to break counting's level bookkeeping, magic's adornment
//! machinery, and the bounded unions.

use recurs_core::classify::Classification;
use recurs_core::oracle::assert_equivalent;
use recurs_core::plan::{plan_query, StrategyKind};
use recurs_datalog::eval::{naive, semi_naive};
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::{Database, LinearRecursion, Relation};

fn lr(src: &str) -> LinearRecursion {
    validate_with_generic_exit(&parse_program(src).unwrap()).unwrap()
}

fn tc() -> LinearRecursion {
    lr("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).")
}

#[test]
fn counting_with_branching_chains() {
    // The step relation is a DAG: one bottom value has several tops, one top
    // several bottoms — exercises the up-walk's fan-out.
    let f = tc();
    let mut db = Database::new();
    db.insert_relation(
        "A",
        Relation::from_pairs([(1, 2), (1, 3), (2, 4), (3, 4), (4, 5), (4, 6)]),
    );
    db.insert_relation("E", Relation::from_pairs([(4, 9), (5, 9), (6, 9)]));
    for q in ["P('1', y)", "P(x, '9')", "P(x, y)", "P('1', '9')"] {
        assert_equivalent(&f, &db, &parse_atom(q).unwrap());
    }
}

#[test]
fn counting_with_dead_frontier() {
    // The query constant is outside the active domain: the frontier dies at
    // level 0 after contributing nothing.
    let f = tc();
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2)]));
    db.insert_relation("E", Relation::from_pairs([(1, 2)]));
    let q = parse_atom("P('777', y)").unwrap();
    let plan = plan_query(&f, &q);
    assert!(plan.execute(&db, &q).unwrap().is_empty());
    assert_equivalent(&f, &db, &q);
}

#[test]
fn counting_with_period_two_frontier() {
    // A strictly bipartite step relation: the frontier alternates between
    // two sets forever — the periodic-tail fixpoint must handle period 2.
    let f = tc();
    let mut db = Database::new();
    // 1↔2 and 3↔4 alternations.
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 1), (3, 4), (4, 3)]));
    db.insert_relation("E", Relation::from_pairs([(1, 9), (2, 8), (4, 7)]));
    for q in [
        "P('1', y)",
        "P('2', y)",
        "P('3', y)",
        "P(x, '9')",
        "P(x, y)",
    ] {
        assert_equivalent(&f, &db, &parse_atom(q).unwrap());
    }
}

#[test]
fn counting_with_long_preperiod_then_cycle() {
    // A "rho"-shaped graph: a tail 1→2→3→4 entering a cycle 4→5→6→4. The
    // frontier has pre-period 3 and period 3.
    let f = tc();
    let mut db = Database::new();
    db.insert_relation(
        "A",
        Relation::from_pairs([(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 4)]),
    );
    db.insert_relation("E", Relation::from_pairs([(5, 50), (2, 20)]));
    for q in ["P('1', y)", "P('4', y)", "P(x, '50')", "P(x, y)"] {
        assert_equivalent(&f, &db, &parse_atom(q).unwrap());
    }
}

#[test]
fn one_dimensional_rotational_formula() {
    // Dimension 1, unit rotational cycle: P(x) :- A(x, y), P(y).
    let f = lr("P(x) :- A(x, y), P(y).\nP(x) :- E(x).");
    let c = Classification::of(&f.recursive_rule);
    assert!(c.is_strongly_stable());
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 1), (4, 1)]));
    db.insert_relation(
        "E",
        Relation::from_tuples(1, [recurs_datalog::relation::tuple_u64([3])]),
    );
    for q in ["P('4')", "P('1')", "P('9')", "P(x)"] {
        assert_equivalent(&f, &db, &parse_atom(q).unwrap());
    }
}

#[test]
fn one_dimensional_self_loop_is_bounded() {
    // P(x) :- B(x), P(x): the recursive rule can never add tuples (rank 0).
    let f = lr("P(x) :- B(x), P(x).\nP(x) :- E(x).");
    let c = Classification::of(&f.recursive_rule);
    assert!(c.is_bounded());
    assert_eq!(c.rank_bound(), Some(0));
    let mut db = Database::new();
    db.insert_relation(
        "B",
        Relation::from_tuples(1, [recurs_datalog::relation::tuple_u64([1])]),
    );
    db.insert_relation(
        "E",
        Relation::from_tuples(
            1,
            [
                recurs_datalog::relation::tuple_u64([1]),
                recurs_datalog::relation::tuple_u64([2]),
            ],
        ),
    );
    let q = parse_atom("P(x)").unwrap();
    let plan = plan_query(&f, &q);
    assert_eq!(plan.strategy, StrategyKind::Bounded);
    assert_eq!(plan.execute(&db, &q).unwrap().len(), 2); // exactly E
    assert_equivalent(&f, &db, &q);
}

#[test]
fn magic_with_three_form_rotation() {
    // s5's rotation makes the adornment cycle dvv → vvd → vdv → dvv; all
    // three adorned predicates and magic rules must be generated. (Planner
    // picks Bounded for s5, so call magic directly.)
    use recurs_core::magic;
    use recurs_datalog::adornment::QueryForm;
    let f = lr("P(x, y, z) :- P(y, z, x).");
    let plan = magic::build_plan(&f, &QueryForm::parse("dvv"));
    assert_eq!(plan.reachable_forms.len(), 3);
    let mut db = Database::new();
    db.insert_relation(
        "E",
        Relation::from_tuples(
            3,
            [
                recurs_datalog::relation::tuple_u64([1, 2, 3]),
                recurs_datalog::relation::tuple_u64([2, 3, 1]),
            ],
        ),
    );
    let q = parse_atom("P('1', y, z)").unwrap();
    let (answers, _) = magic::execute(&plan, &db, &q).unwrap();
    let (oracle, _) = recurs_core::oracle::ground_truth(&f, &db, &q).unwrap();
    assert_eq!(answers, oracle);
    // P = all rotations of E's tuples = {(1,2,3), (2,3,1), (3,1,2)}; only
    // (1,2,3) starts with 1.
    assert_eq!(answers.len(), 1);
}

#[test]
fn bounded_with_out_of_domain_constants() {
    let f = lr("P(x, y, z) :- P(y, z, x).");
    let mut db = Database::new();
    db.insert_relation(
        "E",
        Relation::from_tuples(3, [recurs_datalog::relation::tuple_u64([1, 2, 3])]),
    );
    let q = parse_atom("P('99', y, z)").unwrap();
    let plan = plan_query(&f, &q);
    assert!(plan.execute(&db, &q).unwrap().is_empty());
    assert_equivalent(&f, &db, &q);
}

#[test]
fn empty_exit_relation_everywhere() {
    // With an empty exit, every class must answer ∅ without errors.
    for src in [
        "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).",
        "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).\nP(x, y, z) :- E(x, y, z).",
        "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).\nP(x, y) :- E(x, y).",
    ] {
        let f = lr(src);
        let mut db = Database::new();
        for pred in f.to_program().edb_predicates() {
            let arity = f
                .to_program()
                .rules
                .iter()
                .flat_map(|r| r.body.iter())
                .find(|a| a.predicate == pred)
                .unwrap()
                .arity();
            db.declare(pred, arity).unwrap();
        }
        db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3)]));
        let n = f.dimension();
        let q_src = format!(
            "P({})",
            (0..n)
                .map(|i| format!("v{i}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let q = parse_atom(&q_src).unwrap();
        let plan = plan_query(&f, &q);
        assert!(plan.execute(&db, &q).unwrap().is_empty(), "{src}");
        assert_equivalent(&f, &db, &q);
    }
}

#[test]
fn naive_and_semi_naive_agree_on_random_programs() {
    use recurs_workload::{random_database, random_linear_recursion, RuleConfig};
    for seed in 0..40 {
        let f = random_linear_recursion(seed, RuleConfig::default());
        let db = random_database(&f, 20, 5, seed);
        let mut db1 = db.clone();
        let mut db2 = db;
        naive(&mut db1, &f.to_program(), None).unwrap();
        semi_naive(&mut db2, &f.to_program(), None).unwrap();
        assert_eq!(
            db1.get(f.predicate).unwrap(),
            db2.get(f.predicate).unwrap(),
            "naive ≠ semi-naive for seed {seed}: {}",
            f.recursive_rule
        );
    }
}

#[test]
fn transform_then_compress_composes() {
    // Unfold s4 to stable, then compress its chains; classification and
    // answers must survive both rewrites.
    use recurs_core::compress::compress;
    use recurs_core::transform::unfold_to_stable;
    let f = lr(
        "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), P(y1, y2, y3).\n\
                P(x1, x2, x3) :- E(x1, x2, x3).",
    );
    let t = unfold_to_stable(&f).unwrap();
    let stable = t.to_linear_recursion();
    let c = compress(&stable);
    assert!(Classification::of(&c.lr.recursive_rule).is_strongly_stable());
    assert!(!c.combined.is_empty());

    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (2, 3), (3, 4), (4, 5)]));
    db.insert_relation("B", Relation::from_pairs([(1, 2), (2, 3), (3, 4), (4, 5)]));
    db.insert_relation("C", Relation::from_pairs([(1, 2), (2, 3), (3, 4), (4, 5)]));
    db.insert_relation(
        "E",
        Relation::from_tuples(3, [recurs_datalog::relation::tuple_u64([2, 2, 2])]),
    );
    let mut db2 = db.clone();
    c.materialize(&mut db2).unwrap();
    semi_naive(&mut db, &f.to_program(), None).unwrap();
    semi_naive(&mut db2, &c.lr.to_program(), None).unwrap();
    assert_eq!(db.get("P").unwrap(), db2.get("P").unwrap());
}
