//! Property tests for the Datalog substrate: relational algebra laws,
//! parser round-trips and robustness, unfolding invariants, and evaluator
//! consistency.

use proptest::prelude::*;
use recurs_datalog::algebra::{join, product, project, select_eq, semijoin, union};
use recurs_datalog::parser::{parse, parse_rule};
use recurs_datalog::relation::Relation;
use recurs_datalog::unfold::{expansion, Unfolder};
use recurs_datalog::Value;

fn arb_relation(max_tuples: usize, domain: u64) -> impl Strategy<Value = Relation> {
    prop::collection::vec((1..=domain, 1..=domain), 0..max_tuples).prop_map(Relation::from_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---------- relational algebra laws ----------

    /// Union is commutative, associative, idempotent.
    #[test]
    fn union_laws(a in arb_relation(24, 8), b in arb_relation(24, 8), c in arb_relation(24, 8)) {
        prop_assert_eq!(union(&a, &b), union(&b, &a));
        prop_assert_eq!(union(&union(&a, &b), &c), union(&a, &union(&b, &c)));
        prop_assert_eq!(union(&a, &a), a);
    }

    /// |A × B| = |A|·|B| and the join on no columns is the product.
    #[test]
    fn product_law(a in arb_relation(16, 8), b in arb_relation(16, 8)) {
        let p = product(&a, &b);
        prop_assert_eq!(p.len(), a.len() * b.len());
        prop_assert_eq!(join(&a, &b, &[]), p);
    }

    /// Join is the selection of the product: A ⋈₁₌₀ B = σ(col1=col2)(A × B).
    #[test]
    fn join_is_selected_product(a in arb_relation(16, 6), b in arb_relation(16, 6)) {
        let j = join(&a, &b, &[(1, 0)]);
        let p = recurs_datalog::algebra::select_col_eq(&product(&a, &b), 1, 2);
        prop_assert_eq!(j, p);
    }

    /// Semijoin = projection of the join onto the left columns.
    #[test]
    fn semijoin_is_projected_join(a in arb_relation(16, 6), b in arb_relation(16, 6)) {
        let s = semijoin(&a, &b, &[(1, 0)]);
        let j = project(&join(&a, &b, &[(1, 0)]), &[0, 1]);
        prop_assert_eq!(s, j);
    }

    /// Selection distributes over union.
    #[test]
    fn selection_distributes(a in arb_relation(16, 6), b in arb_relation(16, 6), v in 1u64..=6) {
        let val = Value::from_u64(v);
        prop_assert_eq!(
            select_eq(&union(&a, &b), 0, val),
            union(&select_eq(&a, 0, val), &select_eq(&b, 0, val))
        );
    }

    /// Join is monotone in both arguments.
    #[test]
    fn join_monotone(a in arb_relation(12, 6), b in arb_relation(12, 6), extra in arb_relation(6, 6)) {
        let j1 = join(&a, &b, &[(0, 0)]);
        let bigger = union(&a, &extra);
        let j2 = join(&bigger, &b, &[(0, 0)]);
        for t in j1.iter() {
            prop_assert!(j2.contains(t), "join lost a tuple under growth");
        }
    }

    // ---------- parser ----------

    /// Display ∘ parse is the identity on parsed rules (round-trip).
    #[test]
    fn parser_round_trip(seed in 0u64..100_000) {
        let rule = recurs_workload::random_rule(seed, recurs_workload::RuleConfig::default());
        let printed = rule.to_string();
        let reparsed = parse_rule(&printed).unwrap();
        prop_assert_eq!(rule, reparsed);
    }

    /// The parser never panics on arbitrary input (errors are values).
    #[test]
    fn parser_never_panics(input in "\\PC*") {
        let _ = parse(&input);
    }

    /// The parser never panics on atom-shaped garbage either.
    #[test]
    fn parser_never_panics_structured(input in "[A-Za-z0-9_(),.:? '\\-]{0,120}") {
        let _ = parse(&input);
    }

    // ---------- unfolding ----------

    /// The k-th expansion has exactly k copies of each non-recursive atom
    /// and stays linear recursive; its head never changes.
    #[test]
    fn expansion_shape(seed in 0u64..50_000, k in 1usize..6) {
        let rule = recurs_workload::random_rule(seed, recurs_workload::RuleConfig {
            min_dim: 1, max_dim: 3, max_extra_atoms: 2,
        });
        let nonrec = rule.body.len() - 1;
        let e = expansion(&rule, k);
        prop_assert!(e.is_linear_recursive());
        prop_assert_eq!(e.head.clone(), rule.head.clone());
        prop_assert_eq!(e.body.len(), k * nonrec + 1);
    }

    /// Unfolding is associative: expanding the 2nd expansion once equals the
    /// 3rd expansion up to variable renaming (checked structurally through
    /// the I-graph's condensed shape).
    #[test]
    fn unfolder_streams_consistently(seed in 0u64..50_000) {
        let rule = recurs_workload::random_rule(seed, recurs_workload::RuleConfig {
            min_dim: 1, max_dim: 3, max_extra_atoms: 2,
        });
        let from_iter: Vec<_> = Unfolder::new(&rule).take(4).collect();
        for (i, e) in from_iter.iter().enumerate() {
            prop_assert_eq!(e.body.len(), expansion(&rule, i + 1).body.len());
        }
    }

    // ---------- relations ----------

    /// Sorted iteration is a permutation of the tuple set and is sorted.
    #[test]
    fn sorted_iteration(r in arb_relation(24, 9)) {
        let sorted = r.iter_sorted();
        prop_assert_eq!(sorted.len(), r.len());
        for w in sorted.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for t in &sorted {
            prop_assert!(r.contains(t));
        }
    }

    /// Difference and union satisfy (A − B) ∪ (A ∩ B …) — here the simpler
    /// identity A ⊆ (A − B) ∪ B.
    #[test]
    fn difference_union_cover(a in arb_relation(24, 8), b in arb_relation(24, 8)) {
        let d = a.difference(&b);
        let cover = union(&d, &b);
        for t in a.iter() {
            prop_assert!(cover.contains(t));
        }
        // And the difference is disjoint from b.
        for t in d.iter() {
            prop_assert!(!b.contains(t));
        }
    }
}

// ---------- deterministic (non-proptest) substrate checks ----------

#[test]
fn eval_order_does_not_change_results() {
    // The selection-first join order must be semantically invisible:
    // evaluate a body whose source order forces a product and compare with
    // the naive accumulated result computed by hand.
    use recurs_datalog::eval::eval_body;
    use recurs_datalog::parser::parse_rule as pr;
    use recurs_datalog::Database;
    use std::collections::HashMap;

    let rule = pr("Q(x, v) :- A(x, y), C(u, v), B(y, u).").unwrap();
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (3, 4)]));
    db.insert_relation("B", Relation::from_pairs([(2, 5), (4, 6)]));
    db.insert_relation("C", Relation::from_pairs([(5, 7), (6, 8), (9, 9)]));
    let bindings = eval_body(&db, &rule.body, &HashMap::new()).unwrap();
    let q = bindings
        .project_vars(&[
            recurs_datalog::Symbol::intern("x"),
            recurs_datalog::Symbol::intern("v"),
        ])
        .unwrap();
    let expected = Relation::from_pairs([(1, 7), (3, 8)]);
    assert_eq!(q, expected);
}

#[test]
fn large_chain_fixpoint_is_exact() {
    // A mid-sized stress check with an exactly known answer:
    // closure of a 200-chain has 200·199/2 pairs... (199·200/2 = 19900).
    use recurs_datalog::eval::semi_naive;
    use recurs_datalog::parser::parse_program;
    use recurs_datalog::Database;

    let program = parse_program("P(x, y) :- E(x, y).\nP(x, y) :- A(x, z), P(z, y).").unwrap();
    let mut db = Database::new();
    db.insert_relation("A", recurs_workload::chain(200));
    db.insert_relation("E", recurs_workload::chain(200));
    semi_naive(&mut db, &program, None).unwrap();
    assert_eq!(db.get("P").unwrap().len(), 199 * 200 / 2);
}

#[test]
fn counting_equals_magic_equals_fixpoint_on_shared_case() {
    // Tri-modal agreement on one workload where all three strategies can
    // answer: a stable formula (counting), forced magic via plan_for_form on
    // the general path, and the raw fixpoint.
    use recurs_core::counting;
    use recurs_core::magic;
    use recurs_datalog::adornment::QueryForm;
    use recurs_datalog::parser::{parse_atom, parse_program};
    use recurs_datalog::validate::validate_with_generic_exit;
    use recurs_datalog::Database;

    let lr = validate_with_generic_exit(
        &parse_program("P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).").unwrap(),
    )
    .unwrap();
    let mut db = Database::new();
    db.insert_relation("A", recurs_workload::cycle(12));
    db.insert_relation("E", recurs_workload::cycle(12));
    let q = parse_atom("P('3', y)").unwrap();

    let counting_plan = counting::build_plan(&lr).unwrap();
    let a1 = counting::execute(&counting_plan, &db, &q).unwrap();

    let magic_plan = magic::build_plan(&lr, &QueryForm::of_atom(&q));
    let (a2, _) = magic::execute(&magic_plan, &db, &q).unwrap();

    let (a3, _) = recurs_core::oracle::ground_truth(&lr, &db, &q).unwrap();

    assert_eq!(a1, a2);
    assert_eq!(a2, a3);
    assert_eq!(a3.len(), 12); // every node reachable on a cycle
}
