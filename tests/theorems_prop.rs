//! Property tests for the paper's theorems over randomly generated valid
//! linear recursive rules.

use proptest::prelude::*;
use recurs_core::classify::{Classification, FormulaClass};
use recurs_core::stability::check_theorem_1;
use recurs_core::transform::{to_nonrecursive, unfold_to_stable};
use recurs_datalog::eval::semi_naive;
use recurs_workload::random_database;
use recurs_workload::rules::{random_linear_recursion, random_rule, RuleConfig};

fn config() -> RuleConfig {
    RuleConfig {
        min_dim: 1,
        max_dim: 4,
        max_extra_atoms: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Theorem 1: semantic and syntactic strong stability coincide.
    #[test]
    fn theorem_1_equivalence(seed in 0u64..1_000_000) {
        let rule = random_rule(seed, config());
        check_theorem_1(&rule); // panics on divergence
    }

    /// Theorem 12: the classification is total and each label is unique.
    #[test]
    fn theorem_12_completeness(seed in 0u64..1_000_000) {
        let rule = random_rule(seed, config());
        let c = Classification::of(&rule);
        // Exactly one class label is assigned.
        let label = c.class.label();
        prop_assert!(["A1","A2","A3","A4","A5","B","C","D","E","F"].contains(&label));
        // The invariants between predicates hold.
        if c.is_strongly_stable() {
            prop_assert!(c.is_transformable_to_stable());
            prop_assert_eq!(c.stabilization_period(), Some(1));
        }
        if c.is_transformable_to_stable() {
            prop_assert!(matches!(c.class, FormulaClass::OneDirectional(_)));
        }
        if c.rank_bound().is_some() {
            prop_assert!(c.is_bounded());
        }
        // Mixed requires at least two distinct component classes.
        if c.class == FormulaClass::Mixed {
            let mut kinds = c.component_classes.clone();
            kinds.sort();
            kinds.dedup();
            prop_assert!(kinds.len() >= 2);
        }
    }

    /// Theorems 2 & 4: the unfold-to-stable transformation preserves
    /// semantics, and its result is strongly stable. (Smaller shapes than
    /// the other properties: the equivalence check evaluates the unfolded
    /// rule, whose body has period × atoms literals.)
    #[test]
    fn unfold_to_stable_preserves_semantics(seed in 0u64..100_000) {
        let small = RuleConfig { min_dim: 1, max_dim: 3, max_extra_atoms: 2 };
        let lr = random_linear_recursion(seed, small);
        let c = Classification::of(&lr.recursive_rule);
        if !c.is_transformable_to_stable() {
            return Ok(());
        }
        let t = unfold_to_stable(&lr).expect("class A");
        prop_assert!(Classification::of(&t.stable_rule).is_strongly_stable());

        let db = random_database(&lr, 16, 5, seed ^ 0xABCD);
        let mut db1 = db.clone();
        let mut db2 = db;
        semi_naive(&mut db1, &lr.to_program(), None).unwrap();
        semi_naive(&mut db2, &t.to_program(), None).unwrap();
        prop_assert_eq!(
            db1.get(lr.predicate).unwrap(),
            db2.get(lr.predicate).unwrap(),
            "transform changed semantics for {} (seed {})", lr.recursive_rule, seed
        );
    }

    /// Ioannidis / Theorem 10: the rank bound is genuine — truncating the
    /// fixpoint at `rank + 1` iterations of the recursive rule loses nothing.
    #[test]
    fn rank_bound_is_sound(seed in 0u64..100_000) {
        let small = RuleConfig { min_dim: 1, max_dim: 3, max_extra_atoms: 2 };
        let lr = random_linear_recursion(seed, small);
        let c = Classification::of(&lr.recursive_rule);
        let Some(rank) = c.rank_bound() else { return Ok(()); };
        let program = to_nonrecursive(&lr).expect("bounded formula");
        prop_assert!(program.rules.iter().all(|r| !r.is_recursive()));
        prop_assert_eq!(program.rules.len() as u64, 1 + rank);

        let db = random_database(&lr, 16, 5, seed ^ 0x1234);
        let mut db1 = db.clone();
        let mut db2 = db;
        semi_naive(&mut db1, &lr.to_program(), None).unwrap();
        semi_naive(&mut db2, &program, None).unwrap();
        prop_assert_eq!(
            db1.get(lr.predicate).unwrap(),
            db2.get(lr.predicate).unwrap(),
            "rank bound {} too small for {} (seed {})", rank, lr.recursive_rule, seed
        );
    }

    /// Corollary 3 both ways: transformable iff only one-directional cycles;
    /// and bounded formulas are never equivalent to any stable formula
    /// unless they are also one-directional.
    #[test]
    fn corollary_3(seed in 0u64..1_000_000) {
        let rule = random_rule(seed, config());
        let c = Classification::of(&rule);
        let one_dir = c
            .component_classes
            .iter()
            .all(|k| k.is_one_directional());
        prop_assert_eq!(c.is_transformable_to_stable(), one_dir && !c.component_classes.is_empty());
    }
}
