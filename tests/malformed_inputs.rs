//! Malformed-input corpus: every string here is something a user could feed
//! the parser or the CLI, and every one must come back as a typed error —
//! never a panic, never a silent success. This pins the unwrap/expect sweep
//! of the library paths (`recurs_datalog::parser`, `recurs_cli`).

use recurs_cli::{parse_args, run_on_source, Command};
use recurs_datalog::parser::{parse, parse_program, parse_rule};

/// Source texts that must fail to parse, with a fragment the error message
/// must mention (so diagnostics stay useful, not just non-crashing).
const BAD_SYNTAX: &[&str] = &[
    "P(x",                          // unterminated atom
    "P(x y) :-",                    // missing comma, dangling arrow
    "P(x, y) :- A(x, z), P(z, y)",  // missing final period
    "P(x, y) :- A(x, z) P(z, y).",  // missing comma between atoms
    "P(x, y) :- .",                 // empty body
    "P() :- A(x).",                 // zero-arity head syntax
    ":- A(x, y).",                  // headless rule
    "P(x, y) :- A(x, @), P(x, y).", // illegal character in a term
    "P(x, y] :- A(x, z).",          // mismatched bracket
    "?-",                           // bare query marker
    "P(x, y) :- A(x, z), P(z, y). trailing garbage",
];

#[test]
fn parser_rejects_bad_syntax_without_panicking() {
    for src in BAD_SYNTAX {
        assert!(
            parse(src).is_err(),
            "parse accepted malformed input: {src:?}"
        );
        assert!(
            parse_program(src).is_err(),
            "parse_program accepted malformed input: {src:?}"
        );
    }
}

#[test]
fn parse_rule_rejects_non_rules() {
    for src in ["", "?- P(1, y).", "P(x", "% only a comment"] {
        assert!(
            parse_rule(src).is_err(),
            "parse_rule accepted non-rule input: {src:?}"
        );
    }
}

#[test]
fn parser_errors_name_the_problem() {
    let err = parse("P(x, y) :- A(x, z), P(z, y)")
        .unwrap_err()
        .to_string();
    assert!(!err.is_empty());
    let err = parse("P(x, y] :- A(x, z).").unwrap_err().to_string();
    assert!(!err.is_empty());
}

/// Structurally invalid programs: syntactically fine, semantically rejected
/// by validation with a typed error (reported through the CLI as a string).
const BAD_PROGRAMS: &[(&str, &str)] = &[
    ("A(1, 2).\n?- A(1, y).", "invalid program"), // no recursive rule
    (
        "P(x, y) :- P(x, z), P(z, y).\nP(x, y) :- E(x, y).\n?- P(1, y).",
        "invalid program", // non-linear
    ),
    (
        "P(x, y) :- A(x, '3'), P(x, y).\nP(x, y) :- E(x, y).\n?- P(1, y).",
        "invalid program", // constant in the recursive rule
    ),
    (
        "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).\nA(1).\n?- P(1, y).",
        "arity", // fact arity clashes with the rule's use of A
    ),
    ("", "invalid program"), // empty file: no recursive rule
    ("% only a comment", "invalid program"),
    (
        "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).\nA(1, 2).",
        "no ?- queries", // run needs a query
    ),
];

#[test]
fn cli_run_reports_typed_errors_for_bad_programs() {
    for (src, expect) in BAD_PROGRAMS {
        let err = run_on_source(
            &Command::Run {
                file: String::new(),
                check: false,
                engine: None,
                threads: 2,
                timeout_ms: None,
                max_tuples: None,
                max_iterations: None,
                stats_json: false,
                trace: None,
                metrics: false,
                why: None,
                why_depth: recurs_ivm::DEFAULT_WHY_DEPTH,
            },
            src,
        )
        .unwrap_err();
        assert!(
            err.contains(expect),
            "source {src:?}: expected error mentioning {expect:?}, got {err:?}"
        );
    }
}

#[test]
fn cli_arg_parsing_rejects_malformed_flags() {
    let cases: &[&[&str]] = &[
        &["run"],                                    // missing file
        &["run", "f.dl", "--engine"],                // missing value
        &["run", "f.dl", "--engine", "quantum"],     // unknown engine
        &["run", "f.dl", "--threads", "zero"],       // non-numeric
        &["run", "f.dl", "--threads", "0"],          // zero workers
        &["run", "f.dl", "--timeout-ms", "-5"],      // negative
        &["run", "f.dl", "--max-tuples", "many"],    // non-numeric
        &["run", "f.dl", "--max-iterations", "3.5"], // non-integral
        &["run", "f.dl", "--max-tuples", "9"],       // budget without engine
        &["plan", "f.dl", "--form"],                 // missing pattern
        &["figure", "f.dl", "--levels", "0"],        // zero levels
        &["warp", "f.dl"],                           // unknown command
    ];
    for case in cases {
        let argv: Vec<String> = case.iter().map(|s| s.to_string()).collect();
        assert!(
            parse_args(&argv).is_err(),
            "parse_args accepted malformed argv: {case:?}"
        );
    }
}

#[test]
fn cli_plan_rejects_malformed_forms_as_errors() {
    let tc = "P(x, y) :- A(x, z), P(z, y).\nP(x, y) :- E(x, y).";
    for form in ["dxv", "12", "d v", "öv"] {
        let err = run_on_source(
            &Command::Plan {
                file: String::new(),
                forms: vec![form.into()],
            },
            tc,
        )
        .unwrap_err();
        assert!(
            err.contains("invalid query-form character"),
            "form {form:?}: {err}"
        );
    }
}
