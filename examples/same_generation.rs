//! The classic *same-generation* query — the workload that motivated much of
//! the 1980s recursive-query-processing literature.
//!
//!     sg(x, y) :- flat(x, y).
//!     sg(x, y) :- up(x, u), sg(u, v), down(v, y).
//!
//! Its I-graph has two disjoint unit rotational cycles (x→u over `up`, y→v
//! over `down`), so it is **strongly stable** (class A1) and the paper's
//! counting plan `σE, ∪k[σUp^k-E-Down^k]` applies directly.
//!
//! Run with: `cargo run --example same_generation`

use recurs_core::classify::Classification;
use recurs_core::plan::{plan_query, StrategyKind};
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::{Database, Relation};

fn main() {
    let program = parse_program(
        "SG(x, y) :- Up(x, u), SG(u, v), Down(v, y).\n\
         SG(x, y) :- Flat(x, y).",
    )
    .unwrap();
    let lr = validate_with_generic_exit(&program).unwrap();

    let c = Classification::of(&lr.recursive_rule);
    println!(
        "same-generation class: {} (strongly stable: {})",
        c.class,
        c.is_strongly_stable()
    );

    // A little family tree: a full binary tree of depth 4.
    // `up` = child → parent; `down` = parent → child; `flat` = sibling-ish
    // base pairs (here: each node is in the same generation as itself at the
    // top — use the root pair).
    let depth = 4u32;
    let nodes: u64 = (1 << (depth + 1)) - 1;
    let up = Relation::from_pairs((2..=nodes).map(|c| (c, c / 2)));
    let down = Relation::from_pairs((2..=nodes).map(|c| (c / 2, c)));
    let flat = Relation::from_pairs([(1, 1)]);

    let mut db = Database::new();
    db.insert_relation("Up", up);
    db.insert_relation("Down", down);
    db.insert_relation("Flat", flat);

    // Who is in the same generation as node 9 (a depth-3 node)?
    let query = parse_atom("SG('9', y)").unwrap();
    let plan = plan_query(&lr, &query);
    assert_eq!(plan.strategy, StrategyKind::Counting);
    println!("compiled formula: {}", plan.compiled);

    let answers = plan.execute(&db, &query).unwrap();
    let mut generation: Vec<u64> = answers
        .iter_sorted()
        .iter()
        .map(|t| t[0].as_str().parse().unwrap())
        .collect();
    generation.sort_unstable();
    println!("same generation as 9: {generation:?}");

    // Node 9 is at depth 3; the same generation is exactly all 8 depth-3
    // nodes (ids 8..=15).
    assert_eq!(generation, (8..=15).collect::<Vec<u64>>());
    println!(
        "verified: exactly the {} nodes at depth 3",
        generation.len()
    );
}
