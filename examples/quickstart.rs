//! Quickstart: parse a recursive formula, classify it, plan a query, and
//! execute — checked against the fixpoint oracle.
//!
//! Run with: `cargo run --example quickstart`

use recurs_core::classify::Classification;
use recurs_core::oracle::ground_truth;
use recurs_core::plan::plan_query;
use recurs_core::report::{classification_report, plan_report};
use recurs_datalog::adornment::QueryForm;
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::{Database, Relation};

fn main() {
    // Transitive closure — the paper's s1a, with an explicit exit rule.
    let program = parse_program(
        "P(x, y) :- A(x, z), P(z, y).\n\
         P(x, y) :- E(x, y).",
    )
    .expect("syntax is valid");
    let lr = validate_with_generic_exit(&program).expect("within the paper's fragment");

    // 1. Classify: s1a is strongly stable (disjoint unit cycles, Theorem 1).
    let classification = Classification::of(&lr.recursive_rule);
    println!("== classification ==");
    print!("{}", classification_report(&lr));
    assert!(classification.is_strongly_stable());

    // 2. Load a small database: a path 1→…→6 with a shortcut.
    let mut db = Database::new();
    let edges = Relation::from_pairs([(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (2, 6)]);
    db.insert_relation("A", edges.clone());
    db.insert_relation("E", edges);

    // 3. Plan and execute the paper's representative query shape P(a, Z).
    let query = parse_atom("P('1', z)").unwrap();
    let plan = plan_query(&lr, &query);
    println!("\n== plan ==");
    print!("{}", plan_report(&lr, &QueryForm::of_atom(&query)));

    let answers = plan.execute(&db, &query).expect("execution succeeds");
    println!("\n== answers to P(1, Z) ==");
    println!("{answers}");

    // 4. The compiled plan agrees with the semi-naive fixpoint.
    let (oracle, derived) = ground_truth(&lr, &db, &query).unwrap();
    assert_eq!(answers, oracle);
    println!(
        "\nverified against fixpoint oracle ({} answers; full fixpoint derived {} tuples)",
        answers.len(),
        derived
    );
}
