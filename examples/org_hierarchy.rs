//! A deductive-database scenario: querying an organizational hierarchy with
//! three recursive formulas of *different classes*, showing how the
//! classifier picks a different evaluation strategy for each.
//!
//! 1. `Reports(x, y)` — transitive reporting chain (stable, class A5:
//!    unit rotational + unit permutational cycles).
//! 2. `Peer(x, y, l)` — "peers at the same level reachable in one
//!    reorganization", a bounded formula (class B shape): no fixpoint is
//!    ever run, the plan is a finite union.
//! 3. `Handoff(x, y, z)` — a weight-3 rotational cycle among three roles
//!    (class A3): the planner unfolds it three times into a stable formula.
//!
//! Run with: `cargo run --example org_hierarchy`

use recurs_core::classify::Classification;
use recurs_core::plan::{plan_query, StrategyKind};
use recurs_core::report::plan_report;
use recurs_datalog::adornment::QueryForm;
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::relation::tuple_u64;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::{Database, Relation};

fn main() {
    // ---- shared EDB: a management tree of ~120 employees -----------------
    let mut db = Database::new();
    // Boss(m, e): m manages e. Ternary tree, ids 1..=121.
    let boss = Relation::from_pairs((2..=121u64).map(|e| ((e - 2) / 3 + 1, e)));
    db.insert_relation("Boss", boss.clone());
    db.insert_relation("BossE", boss);

    // ---- 1. transitive reporting (stable) ---------------------------------
    let reports = validate_with_generic_exit(
        &parse_program(
            "Reports(m, e) :- Boss(m, x), Reports(x, e).\n\
             Reports(m, e) :- BossE(m, e).",
        )
        .unwrap(),
    )
    .unwrap();
    let c = Classification::of(&reports.recursive_rule);
    println!(
        "Reports/2: class {} — strongly stable: {}",
        c.class,
        c.is_strongly_stable()
    );
    let q = parse_atom("Reports('2', e)").unwrap();
    let plan = plan_query(&reports, &q);
    assert_eq!(plan.strategy, StrategyKind::Counting);
    let everyone_under_2 = plan.execute(&db, &q).unwrap();
    println!("  employees under manager 2: {}", everyone_under_2.len());
    print!("{}", plan_report(&reports, &QueryForm::parse("dv")));

    // ---- 2. a bounded (pseudo-recursive) formula ---------------------------
    // Peer(x, y, w, z): the s8-shaped bounded pattern over org relations.
    let peer = validate_with_generic_exit(
        &parse_program(
            "Peer(x, y, z, u) :- Boss(x, y), Mentor(y1, u), Moved(z1, u1), Peer(z, y1, z1, u1).\n\
             Peer(x, y, z, u) :- Seed(x, y, z, u).",
        )
        .unwrap(),
    )
    .unwrap();
    let c = Classification::of(&peer.recursive_rule);
    println!(
        "\nPeer/4: class {} — bounded with rank {:?}",
        c.class,
        c.rank_bound()
    );
    db.insert_relation("Mentor", Relation::from_pairs([(2, 7), (3, 8), (4, 9)]));
    db.insert_relation("Moved", Relation::from_pairs([(5, 2), (6, 3)]));
    db.insert_relation(
        "Seed",
        Relation::from_tuples(4, [tuple_u64([2, 2, 5, 2]), tuple_u64([3, 3, 6, 3])]),
    );
    let q = parse_atom("Peer(x, y, z, u)").unwrap();
    let plan = plan_query(&peer, &q);
    assert_eq!(plan.strategy, StrategyKind::Bounded);
    let peers = plan.execute(&db, &q).unwrap();
    println!("  peer tuples (no fixpoint executed): {}", peers.len());

    // ---- 3. a rotating three-role formula (class A3) ----------------------
    // Handoff(a, b, c): role a hands to the holder 3 steps around the cycle.
    let handoff = validate_with_generic_exit(
        &parse_program(
            "Handoff(x1, x2, x3) :- Deputy(x1, y3), Cover(x2, y1), Backup(y2, x3), Handoff(y1, y2, y3).\n\
             Handoff(x1, x2, x3) :- Initial(x1, x2, x3).",
        )
        .unwrap(),
    )
    .unwrap();
    let c = Classification::of(&handoff.recursive_rule);
    println!(
        "\nHandoff/3: class {} — transformable to stable by unfolding {}×",
        c.class,
        c.stabilization_period().unwrap()
    );
    db.insert_relation("Deputy", Relation::from_pairs([(1, 2), (2, 3), (3, 1)]));
    db.insert_relation("Cover", Relation::from_pairs([(4, 5), (5, 6), (6, 4)]));
    db.insert_relation("Backup", Relation::from_pairs([(7, 8), (8, 9), (9, 7)]));
    db.insert_relation(
        "Initial",
        Relation::from_tuples(3, [tuple_u64([2, 5, 7]), tuple_u64([3, 6, 8])]),
    );
    let q = parse_atom("Handoff('2', '5', z)").unwrap();
    let plan = plan_query(&handoff, &q);
    assert_eq!(plan.strategy, StrategyKind::Counting);
    assert_eq!(plan.transform.as_ref().unwrap().period, 3);
    let answers = plan.execute(&db, &q).unwrap();
    println!("  handoff answers for (2, 5, Z): {}", answers);
    assert!(!answers.is_empty());

    // Every plan above is certified against the fixpoint oracle in the test
    // suite; spot-check one here too.
    recurs_core::oracle::assert_equivalent(&handoff, &db, &q);
    println!("\nall strategies verified against the fixpoint oracle");
}
