//! Pseudo recursion (section 6 of the paper): bounded formulas are not
//! really recursive — they are equivalent to a *finite* union of
//! non-recursive rules, like a view that can be fully expanded.
//!
//! This example takes the paper's three bounded shapes (s8, s10, s5), prints
//! the expanded non-recursive programs (the paper's s8a′/s8b′), and shows
//! that the bounded plan answers queries with **zero fixpoint iterations**
//! while producing exactly the fixpoint's answers.
//!
//! Run with: `cargo run --example pseudo_recursion`

use recurs_core::classify::Classification;
use recurs_core::plan::{plan_query, StrategyKind};
use recurs_core::transform::to_nonrecursive;
use recurs_datalog::parser::{parse_atom, parse_program};
use recurs_datalog::relation::tuple_u64;
use recurs_datalog::validate::validate_with_generic_exit;
use recurs_datalog::{Database, LinearRecursion, Relation};

fn show(name: &str, lr: &LinearRecursion, db: &Database, query: &str) {
    let c = Classification::of(&lr.recursive_rule);
    println!("== {name} ==");
    println!("formula : {}", lr.recursive_rule);
    println!(
        "class {}, bounded: {}, rank bound: {:?}",
        c.class,
        c.is_bounded(),
        c.rank_bound()
    );
    let expanded = to_nonrecursive(lr).expect("bounded");
    println!(
        "equivalent non-recursive program ({} rules):",
        expanded.rules.len()
    );
    for rule in &expanded.rules {
        println!("  {rule}");
    }
    let q = parse_atom(query).unwrap();
    let plan = plan_query(lr, &q);
    assert_eq!(plan.strategy, StrategyKind::Bounded);
    let answers = plan.execute(db, &q).unwrap();
    println!("query {q} → {} answers (no fixpoint)", answers.len());
    recurs_core::oracle::assert_equivalent(lr, db, &q);
    println!("fixpoint oracle agrees\n");
}

fn main() {
    // s8 — the bounded-cycle example, rank 2.
    let s8 = validate_with_generic_exit(
        &parse_program(
            "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), P(z, y1, z1, u1).\n\
             P(x, y, z, u) :- E(x, y, z, u).",
        )
        .unwrap(),
    )
    .unwrap();
    let mut db = Database::new();
    db.insert_relation("A", Relation::from_pairs([(1, 2), (3, 4), (2, 2)]));
    db.insert_relation("B", Relation::from_pairs([(2, 9), (4, 8)]));
    db.insert_relation("C", Relation::from_pairs([(7, 2), (6, 4)]));
    db.insert_relation(
        "E",
        Relation::from_tuples(4, [tuple_u64([3, 2, 7, 2]), tuple_u64([1, 4, 6, 4])]),
    );
    show("s8: bounded cycle (Example 8)", &s8, &db, "P(x, y, z, u)");

    // s10 — no non-trivial cycle, rank 2.
    let s10 = validate_with_generic_exit(
        &parse_program("P(x, y) :- B(y), C(x, y1), P(x1, y1).\nP(x, y) :- E(x, y).").unwrap(),
    )
    .unwrap();
    let mut db = Database::new();
    db.insert_relation("B", Relation::from_tuples(1, [tuple_u64([5])]));
    db.insert_relation("C", Relation::from_pairs([(1, 7), (2, 7)]));
    db.insert_relation("E", Relation::from_pairs([(9, 7), (3, 5)]));
    show(
        "s10: no non-trivial cycle (Example 10)",
        &s10,
        &db,
        "P(x, y)",
    );

    // s5 — pure permutation, rank lcm(3) − 1 = 2.
    let s5 =
        validate_with_generic_exit(&parse_program("P(x, y, z) :- P(y, z, x).").unwrap()).unwrap();
    let mut db = Database::new();
    db.insert_relation(
        "E",
        Relation::from_tuples(3, [tuple_u64([1, 2, 3]), tuple_u64([7, 7, 8])]),
    );
    show(
        "s5: permutational cycle (Example 5)",
        &s5,
        &db,
        "P(x, y, z)",
    );

    println!("All three formulas were answered as plain (non-recursive) view expansions.");
}
