//! A tour of the full classification: every worked example of the paper
//! (s1–s12) classified, rendered, and planned — the on-screen version of the
//! paper's sections 4–10.
//!
//! Run with: `cargo run --example classifier_tour`

use recurs_core::report::{classification_report, plan_report};
use recurs_datalog::adornment::QueryForm;
use recurs_datalog::parser::parse_program;
use recurs_datalog::validate::validate_with_generic_exit;

fn main() {
    let examples: &[(&str, &str, &str)] = &[
        ("s1a (Example 1)", "P(x, y) :- A(x, z), P(z, y).", "dv"),
        (
            "s1b (Example 1)",
            "P(x, y, z) :- A(x, y), P(u, z, v), B(u, v).",
            "dvv",
        ),
        (
            "s2a (Example 2)",
            "P(x, y) :- A(x, z), P(z, u), B(u, y).",
            "dv",
        ),
        (
            "s3 (Example 3, class A1)",
            "P(x, y, z) :- A(x, u), B(y, v), P(u, v, w), C(w, z).",
            "ddv",
        ),
        (
            "s4a (Example 4, class A3)",
            "P(x1, x2, x3) :- A(x1, y3), B(x2, y1), C(y2, x3), P(y1, y2, y3).",
            "ddv",
        ),
        (
            "s5 (Example 5, class A4)",
            "P(x, y, z) :- P(y, z, x).",
            "dvv",
        ),
        (
            "s6 (Example 6)",
            "P(x, y, z, u, v, w) :- P(z, y, u, x, w, v).",
            "dvvvvv",
        ),
        (
            "s7 (Example 7, class A5)",
            "P(x, y, z, u, w, s, v) :- A(x, t), P(t, z, y, w, s, r, v), B(u, r).",
            "dvvvvvv",
        ),
        (
            "s8 (Example 8, class B)",
            "P(x, y, z, u) :- A(x, y), B(y1, u), C(z1, u1), P(z, y1, z1, u1).",
            "dvvv",
        ),
        (
            "s9 (Example 9, class C)",
            "P(x, y, z) :- A(x, y), B(u, v), P(u, z, v).",
            "dvv",
        ),
        (
            "s10 (Example 10, class D)",
            "P(x, y) :- B(y), C(x, y1), P(x1, y1).",
            "vv",
        ),
        (
            "s11 (Example 11, class E)",
            "P(x, y) :- A(x, x1), B(y, y1), C(x1, y1), P(x1, y1).",
            "dv",
        ),
        (
            "s12 (Example 14, class F)",
            "P(x, y, z) :- A(x, u), B(y, v), C(u, v), D(w, z), P(u, v, w).",
            "dvv",
        ),
    ];

    for (name, src, form) in examples {
        println!("{}", "=".repeat(72));
        println!("{name}");
        println!("{}", "=".repeat(72));
        let lr = validate_with_generic_exit(&parse_program(src).unwrap()).unwrap();
        print!("{}", classification_report(&lr));
        println!("--- plan for the representative query form ---");
        print!("{}", plan_report(&lr, &QueryForm::parse(form)));
        println!();
    }
}
