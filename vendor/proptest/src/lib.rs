//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the API subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * `prop_assert!` / `prop_assert_eq!`,
//! * integer range strategies, tuple strategies, `prop::collection::vec`,
//!   `prop::sample::select`, `.prop_map`, and string-pattern strategies for
//!   the char-class shapes the tests use,
//! * [`test_runner::ProptestConfig`] and a deterministic runner.
//!
//! Unlike real proptest there is **no shrinking** and the case stream is
//! deterministic (seeded per test from the case index), which keeps test
//! runs reproducible without regression files.

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// String-pattern strategies: `&str` is interpreted as a (tiny subset of
    /// a) regex. Supported shapes, chosen to cover the workspace's tests:
    ///
    /// * `"\\PC*"` — any printable characters, length 0..48;
    /// * `"[<class>]{lo,hi}"` — characters from a char class (literal chars,
    ///   `a-z` ranges, `\\`-escapes), length in `lo..=hi`;
    /// * anything else — alphanumeric noise, length 0..24 (robustness tests
    ///   only need *arbitrary* input, not faithful regex sampling).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            pattern_string(self, rng)
        }
    }

    fn pattern_string(pattern: &str, rng: &mut TestRng) -> String {
        if pattern == "\\PC*" {
            let len = (rng.next_u64() % 48) as usize;
            return (0..len).map(|_| printable_char(rng)).collect();
        }
        if let Some((class, lo, hi)) = parse_class_repeat(pattern) {
            let span = (hi - lo + 1) as u64;
            let len = lo + (rng.next_u64() % span) as usize;
            return (0..len)
                .map(|_| class[(rng.next_u64() % class.len() as u64) as usize])
                .collect();
        }
        let len = (rng.next_u64() % 24) as usize;
        const ALNUM: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        (0..len)
            .map(|_| ALNUM[(rng.next_u64() % ALNUM.len() as u64) as usize] as char)
            .collect()
    }

    fn printable_char(rng: &mut TestRng) -> char {
        // Mostly ASCII printable, occasionally a multibyte scalar.
        match rng.next_u64() % 8 {
            0 => 'λ',
            1 => 'é',
            _ => (0x20 + (rng.next_u64() % 0x5F) as u8) as char,
        }
    }

    /// Parses `[<class>]{lo,hi}` into (member characters, lo, hi).
    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let (class_src, tail) = rest.split_at(close);
        let tail = tail.strip_prefix(']')?;
        let tail = tail.strip_prefix('{')?;
        let tail = tail.strip_suffix('}')?;
        let (lo, hi) = tail.split_once(',')?;
        let lo: usize = lo.trim().parse().ok()?;
        let hi: usize = hi.trim().parse().ok()?;
        if hi < lo {
            return None;
        }
        let mut members = Vec::new();
        let mut chars = class_src.chars().peekable();
        while let Some(c) = chars.next() {
            if c == '\\' {
                if let Some(escaped) = chars.next() {
                    members.push(escaped);
                }
            } else if chars.peek() == Some(&'-') {
                let mut lookahead = chars.clone();
                lookahead.next(); // consume '-'
                match lookahead.next() {
                    Some(end) if end != ']' => {
                        chars = lookahead;
                        for code in (c as u32)..=(end as u32) {
                            if let Some(m) = char::from_u32(code) {
                                members.push(m);
                            }
                        }
                    }
                    _ => members.push(c),
                }
            } else {
                members.push(c);
            }
        }
        if members.is_empty() {
            None
        } else {
            Some((members, lo, hi))
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a random length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing a uniformly random element of `options` (cloned).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod test_runner {
    //! Configuration, RNG, and the per-test case loop.

    /// Number of cases to run per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many generated cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable failure reason.
        pub reason: String,
    }

    impl TestCaseError {
        /// Builds a failure from a reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError {
                reason: reason.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.reason)
        }
    }

    /// Deterministic RNG feeding the strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream.
        pub fn seed_from_u64(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Runs the property closure over `config.cases` deterministic cases and
    /// panics (with the case index) on the first failure.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Builds a runner.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// The case loop. `test_name` improves failure messages.
        pub fn run_cases<F>(&mut self, test_name: &str, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            // Seed per test name so distinct properties see distinct streams,
            // but reruns are identical (no regression files needed).
            let name_hash = test_name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
            });
            for i in 0..self.config.cases {
                let mut rng =
                    TestRng::seed_from_u64(name_hash ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
                if let Err(e) = case(&mut rng) {
                    panic!(
                        "proptest property `{test_name}` failed at case {i}/{}:\n{}",
                        self.config.cases, e.reason
                    );
                }
            }
        }
    }
}

/// The `prop::` paths used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! What `use proptest::prelude::*` brings in.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(arg in strategy,
/// ...) { body }` items (attributes, including `#[test]`, are forwarded).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run_cases(stringify!($name), |__proptest_rng| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                )+
                let __proptest_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                __proptest_result
            });
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body (fails the case, with
/// optional formatted context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_vec(pair in (1u64..=5, 1u64..=5), v in prop::collection::vec(0u64..10, 0..6)) {
            prop_assert!(pair.0 >= 1 && pair.1 <= 5);
            prop_assert!(v.len() < 6);
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn select_picks_member(x in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&x));
        }
    }

    proptest! {
        #[test]
        fn default_config_works(s in "[a-c]{1,3}") {
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn prop_map_applies() {
        let strat = (1u64..=3).prop_map(|x| x * 10);
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!([10, 20, 30].contains(&v));
        }
    }

    #[test]
    fn pc_star_generates_printables() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = "\\PC*".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
