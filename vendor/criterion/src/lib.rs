//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the API subset the workspace's benches use — benchmark groups,
//! `bench_with_input`/`bench_function`, `BenchmarkId`, `Throughput`,
//! `sample_size`/`measurement_time`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — on a simple wall-clock
//! harness. Each benchmark warms up briefly, runs timed samples, and prints
//! `group/function/param  median  (min … max)` lines.
//!
//! It produces no HTML reports and does no statistical analysis; it exists
//! so `cargo bench` runs and yields honest comparative numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a group's throughput is expressed (accepted, echoed in the output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function_id.into()),
        }
    }

    /// Builds an id from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting one duration per sample of many
    /// iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration calibration: aim for samples that
        // are long enough to time but keep total runtime modest.
        let warmup_start = Instant::now();
        black_box(routine());
        let one = warmup_start.elapsed();
        let iters_per_sample = if one >= Duration::from_millis(10) {
            1
        } else {
            let target = Duration::from_millis(10).as_nanos();
            ((target / one.as_nanos().max(1)) as usize).clamp(1, 10_000)
        };
        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.measured
                .push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Real criterion requires >= 10; we accept anything >= 1 but keep the
        // spirit: more samples, steadier medians.
        self.samples = n.clamp(1, 1_000);
        self
    }

    /// Accepted for API compatibility; the stand-in derives its own sample
    /// iteration counts.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; echoed nowhere in the stand-in.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `routine` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            measured: Vec::new(),
        };
        routine(&mut b, input);
        self.report(&id, &b.measured);
        self
    }

    /// Benchmarks `routine` without an input.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            measured: Vec::new(),
        };
        routine(&mut b);
        self.report(&id, &b.measured);
        self
    }

    fn report(&self, id: &BenchmarkId, measured: &[Duration]) {
        if measured.is_empty() {
            println!("{}/{}  (no samples)", self.name, id.id);
            return;
        }
        let mut sorted = measured.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{}/{}  median {median:?}  (min {min:?} … max {max:?}, {} samples)",
            self.name,
            id.id,
            sorted.len()
        );
    }

    /// Ends the group (separator line in the output).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            samples: 20,
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<R>(&mut self, id: &str, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        self
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub_smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(8));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("product", |b| b.iter(|| (1..5u64).product::<u64>()));
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
