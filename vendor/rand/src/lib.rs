//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the (small) API subset the workspace actually uses: a seeded
//! deterministic PRNG (`StdRng`/`SmallRng` over SplitMix64), the `Rng`
//! extension methods `gen_range`/`gen_bool`/`gen`, `SeedableRng`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! It is **not** statistically equivalent to the real `rand`; the workspace
//! only relies on determinism-given-seed, which SplitMix64 provides.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Deterministic.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS entropy. Offline stand-in: a fixed seed,
    /// so programs remain deterministic.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`. Panics if `low > high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as u128) - (low as u128);
                low + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample from empty range");
                let span = (high as u128) - (low as u128) + 1;
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`0..n` or `0..=n`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        self.next_u64() <= threshold
    }

    /// A random value; offline stand-in supports `u64`/`u32`/`bool` via
    /// [`FromRng`].
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types producible by [`Rng::gen`].
pub trait FromRng {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit PRNG (SplitMix64). Stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    /// Same generator under rand's "small" name.
    pub type SmallRng = StdRng;
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude` stand-in.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// A convenience generator seeded from a fixed constant (no OS entropy
/// offline); prefer explicit seeds.
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0xDEAD_BEEF_CAFE_F00D)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(5..10);
            assert!((5..10).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
