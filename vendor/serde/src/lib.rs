//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so — like the vendored
//! `rand`, `proptest` and `criterion` crates — this implements exactly the
//! API subset the workspace uses: a [`Serialize`] trait that renders a type
//! into a [`Value`] tree, plus a JSON emitter ([`json::to_string`] and
//! [`json::to_string_pretty`]). There is no `Deserialize`, no derive macro,
//! and no data-format abstraction; types implement [`Serialize`] by hand.
//!
//! The [`Value`] tree is deliberately small: null, booleans, integers,
//! floats, strings, arrays, and objects with insertion-ordered keys. The
//! JSON emitter escapes strings per RFC 8259 and renders non-finite floats
//! as `null` (JSON has no NaN/Infinity).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A dynamically-typed serialization tree, rendered to JSON by [`json`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for counters and sizes).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A floating-point number. Non-finite values emit as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An object; keys keep their insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Array(items.into_iter().collect())
    }

    /// Builds a string value.
    pub fn string(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Looks up a key in an object value; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a serialization tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Serialize for u32 {
    fn to_value(&self) -> Value {
        Value::UInt(u64::from(*self))
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

/// JSON rendering of [`Value`] trees (the `serde_json` subset).
pub mod json {
    use super::{Serialize, Value};
    use std::fmt::Write as _;

    /// Renders a value as compact single-line JSON.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.to_value());
        out
    }

    /// Renders a value as indented multi-line JSON (two-space indent).
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value_pretty(&mut out, &value.to_value(), 0);
        out
    }

    fn write_value(out: &mut String, value: &Value) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(x) => super::write_json_float(out, *x),
            Value::Str(s) => super::write_json_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(out, item);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    super::write_json_string(out, k);
                    out.push(':');
                    write_value(out, v);
                }
                out.push('}');
            }
        }
    }

    fn write_value_pretty(out: &mut String, value: &Value, depth: usize) {
        match value {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_value_pretty(out, item, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    super::write_json_string(out, k);
                    out.push_str(": ");
                    write_value_pretty(out, v, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => write_value(out, other),
        }
    }

    fn indent(out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_json_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // Always include a decimal point or exponent so the value reads
        // back as a float, matching serde_json.
        let rendered = format!("{x}");
        out.push_str(&rendered);
        if !rendered.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&42u64), "42");
        assert_eq!(json::to_string(&-3i64), "-3");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&2.0f64), "2.0");
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string("hi"), "\"hi\"");
        assert_eq!(json::to_string(&Option::<u64>::None), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            json::to_string("a\"b\\c\nd\te\u{1}"),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn composites_render_in_order() {
        let v = Value::object([
            ("b", Value::UInt(1)),
            ("a", Value::array([Value::Null, Value::Bool(false)])),
        ]);
        assert_eq!(json::to_string(&v), "{\"b\":1,\"a\":[null,false]}");
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::object([("xs", Value::array([Value::UInt(1), Value::UInt(2)]))]);
        let pretty = json::to_string_pretty(&v);
        assert_eq!(pretty, "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_composites_stay_compact_in_pretty_mode() {
        let v = Value::object([("a", Value::Array(vec![])), ("o", Value::Object(vec![]))]);
        assert_eq!(
            json::to_string_pretty(&v),
            "{\n  \"a\": [],\n  \"o\": {}\n}"
        );
    }

    #[test]
    fn object_get_looks_up_keys() {
        let v = Value::object([("k", Value::UInt(7))]);
        assert_eq!(v.get("k"), Some(&Value::UInt(7)));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("k"), None);
    }
}
