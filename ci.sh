#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

# The unwrap/expect lint gate (crates/{datalog,engine,cli} carry
# `#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]`)
# is hardened to an error by -D warnings above; the fault-inject feature is
# linted separately because it swaps in the non-test fault hooks.
echo "==> cargo clippy --features fault-inject (-D warnings)"
cargo clippy -p recurs-engine --all-targets --features fault-inject --offline -- -D warnings
cargo clippy -p recurs-serve --all-targets --features fault-inject --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> cargo test fault-injection suite"
cargo test -p recurs-engine --features fault-inject --offline -q
cargo test -p recurs-serve --features fault-inject --offline -q

echo "==> OK"
