#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> OK"
