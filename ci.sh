#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

# The unwrap/expect lint gate (crates/{datalog,engine,cli} carry
# `#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]`)
# is hardened to an error by -D warnings above; the fault-inject feature is
# linted separately because it swaps in the non-test fault hooks.
echo "==> cargo clippy --features fault-inject (-D warnings)"
cargo clippy -p recurs-engine --all-targets --features fault-inject --offline -- -D warnings
cargo clippy -p recurs-ivm --all-targets --features fault-inject --offline -- -D warnings
cargo clippy -p recurs-serve --all-targets --features fault-inject --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

# The fault-injection lanes include the ivm differential gate under forced
# maintenance truncation (tripped patches must still equal the from-scratch
# oracle via the cold fallback).
echo "==> cargo test fault-injection suite"
cargo test -p recurs-engine --features fault-inject --offline -q
cargo test -p recurs-ivm --features fault-inject --offline -q
cargo test -p recurs-serve --features fault-inject --offline -q

# The observability spine is linted and tested in both feature shapes: the
# default build (recorder + aggregator + Prometheus text only) and with the
# JSON-lines trace sink compiled in.
echo "==> recurs-obs lanes (default and --features trace-json)"
cargo clippy -p recurs-obs --all-targets --offline -- -D warnings
cargo clippy -p recurs-obs --all-targets --features trace-json --offline -- -D warnings
cargo test -p recurs-obs --offline -q
cargo test -p recurs-obs --features trace-json --offline -q

# Serve protocol smoke test: a spawned `serve --stdin` session must answer
# `!metrics` with parseable Prometheus exposition text.
echo "==> serve !metrics smoke test"
cargo test -p recurs-cli --offline -q --test cli_process \
  serve_stdin_answers_metrics_with_parseable_prometheus_text

# Benchmark regression tripwire: re-times the smallest engine_scaling sizes
# and diffs against BENCH_engine.json (drift-corrected; fails above 25%),
# and re-times single-fact maintenance on tc/800 against BENCH_ivm.json
# (same 25% tripwire on the patched rows, plus a hard >= 5x
# patched-vs-cold speedup floor).
echo "==> bench_compare --quick"
cargo run --release --offline -p recurs-bench --bin bench_compare -- --quick --samples 5

echo "==> OK"
