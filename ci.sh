#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

# The unwrap/expect lint gate (crates/{datalog,engine,cli} carry
# `#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]`)
# is hardened to an error by -D warnings above; the fault-inject feature is
# linted separately because it swaps in the non-test fault hooks.
echo "==> cargo clippy --features fault-inject (-D warnings)"
cargo clippy -p recurs-engine --all-targets --features fault-inject --offline -- -D warnings
cargo clippy -p recurs-ivm --all-targets --features fault-inject --offline -- -D warnings
cargo clippy -p recurs-serve --all-targets --features fault-inject --offline -- -D warnings
cargo clippy -p recurs-net --all-targets --features fault-inject --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

# The fault-injection lanes include the ivm differential gate under forced
# maintenance truncation (tripped patches must still equal the from-scratch
# oracle via the cold fallback).
echo "==> cargo test fault-injection suite"
cargo test -p recurs-engine --features fault-inject --offline -q
cargo test -p recurs-ivm --features fault-inject --offline -q
cargo test -p recurs-serve --features fault-inject --offline -q

# The recurs-net chaos suite: torn frames, stalled sockets, mid-request
# disconnects, and worker panics during drain must never leak a panic out of
# a connection handler, must answer every accepted request exactly once (or
# close cleanly), and must leave the snapshot chain intact.
echo "==> recurs-net chaos suite (--features fault-inject)"
cargo test -p recurs-net --features fault-inject --offline -q

# The observability spine is linted and tested in both feature shapes: the
# default build (recorder + aggregator + Prometheus text only) and with the
# JSON-lines trace sink compiled in.
echo "==> recurs-obs lanes (default and --features trace-json)"
cargo clippy -p recurs-obs --all-targets --offline -- -D warnings
cargo clippy -p recurs-obs --all-targets --features trace-json --offline -- -D warnings
cargo test -p recurs-obs --offline -q
cargo test -p recurs-obs --features trace-json --offline -q

# Serve protocol smoke test: a spawned `serve --stdin` session must answer
# `!metrics` with parseable Prometheus exposition text.
echo "==> serve !metrics smoke test"
cargo test -p recurs-cli --offline -q --test cli_process \
  serve_stdin_answers_metrics_with_parseable_prometheus_text

# Network smoke lane, against spawned `recurs` processes: `serve --listen`
# must answer !health/!metrics over framed TCP, a kill -TERM mid-run must
# drain every in-flight pipelined request (exactly one reply each, in order,
# then exit 0), and `serve --stdin` must honor the same SIGTERM contract.
echo "==> serve --listen + SIGTERM drain smoke tests"
cargo test -p recurs-cli --offline -q --test cli_process \
  serve_listen_process_answers_health_queries_and_metrics_over_tcp
cargo test -p recurs-cli --offline -q --test cli_process \
  serve_listen_process_sigterm_mid_run_answers_every_in_flight_request
cargo test -p recurs-cli --offline -q --test cli_process \
  serve_stdin_sigterm_drains_with_exit_zero_while_stdin_stays_open

# Benchmark regression tripwire: re-times the smallest engine_scaling sizes
# and diffs against BENCH_engine.json (drift-corrected; fails above 25%),
# re-times single-fact maintenance on tc/800 against BENCH_ivm.json
# (same 25% tripwire on the patched rows, plus a hard >= 5x
# patched-vs-cold speedup floor), and replays the loadgen mixed workload
# against an in-process TCP server, gating the median-round p95 against
# BENCH_load.json (25% drift-corrected tripwire) plus hard liveness checks
# (no shedding at smoke QPS, no transport errors, a clean unforced drain).
# Trace well-formedness lane: a spawned `serve --stdin --trace FILE`
# session over a real dataset must produce a JSON-lines trace that
# `obsctl validate` accepts end to end — every line parses, every event
# kind is in the taxonomy, sequence numbers are monotone, every span's
# parent resolves, and no trace id is orphaned.
echo "==> obsctl validate lane (serve --stdin --trace)"
CI_TRACE="$(mktemp -t recurs-ci-trace-XXXXXX.jsonl)"
printf '@trace=c0ffee ?- P(1, y).\n+A(6, 7). +E(6, 7).\n?- P(1, 6).\nwhy P(1, 6).\n!quit\n' | \
  cargo run --release --offline -p recurs-cli --bin recurs -- \
    serve datasets/transitive_closure.dl --stdin --trace "$CI_TRACE" > /dev/null
cargo run --release --offline -p recurs-obs --bin obsctl -- validate "$CI_TRACE"
rm -f "$CI_TRACE"

echo "==> bench_compare --quick (+ no-op overhead re-audit)"
cargo run --release --offline -p recurs-bench --bin bench_compare -- --quick --samples 5 \
  --reaudit-obs BENCH_obs.json

echo "==> OK"
